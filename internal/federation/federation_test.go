package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ivmeps/internal/core"
	"ivmeps/internal/naive"
	"ivmeps/internal/query"
	"ivmeps/internal/relation"
	"ivmeps/internal/tuple"
	"ivmeps/internal/viewtree"
)

// randomDB builds an initial database for q with n tuples per relation
// over a small domain (duplicates accumulate multiplicity).
func randomDB(q *query.Query, rng *rand.Rand, n int, domain int64) naive.Database {
	db := naive.Database{}
	for _, name := range q.RelationNames() {
		var schema tuple.Schema
		for _, a := range q.Atoms {
			if a.Rel == name {
				schema = a.Vars
				break
			}
		}
		r := relation.New(name, schema)
		for i := 0; i < n; i++ {
			t := make(tuple.Tuple, len(schema))
			for j := range t {
				t[j] = rng.Int63n(domain)
			}
			r.MustAdd(t, 1)
		}
		db[name] = r
	}
	return db
}

func resultMap(enum func(func(tuple.Tuple, int64) bool)) map[string]int64 {
	out := map[string]int64{}
	enum(func(t tuple.Tuple, m int64) bool {
		out[fmt.Sprint(t)] = m
		return true
	})
	return out
}

func sameResultMap(t *testing.T, label string, got, want map[string]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d result tuples, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for k, m := range want {
		if got[k] != m {
			t.Fatalf("%s: tuple %s has mult %d, want %d", label, k, got[k], m)
		}
	}
}

// propQueries exercises every routing shape: a free shard key
// (concatenating gather), a bound shard key (aggregating gather), multiple
// components with a broadcast component, repeated relation symbols with
// per-occurrence key positions, and a Boolean query.
var propQueries = []string{
	"Q(A, B, C) = R(A, B), S(A, C)",
	"Q(C, E) = R(A), S(A, B), T(A, B, C), U(A, D), V(A, D, E)",
	"Q(A, C) = R(A, B), T(C)",
	"Q(A, B) = R(A, B), R(B, A)",
	"Q() = R(A, B), S(B)",
}

// driveBatches generates a deterministic mixed insert/delete batch
// sequence that is valid by construction (deletes target previously
// inserted rows).
type driver struct {
	rng  *rand.Rand
	rels []string
	ar   map[string]int
	live map[string][]tuple.Tuple
}

func newDriver(q *query.Query, seed int64) *driver {
	d := &driver{rng: rand.New(rand.NewSource(seed)), ar: map[string]int{}, live: map[string][]tuple.Tuple{}}
	for _, name := range q.RelationNames() {
		d.rels = append(d.rels, name)
		for _, a := range q.Atoms {
			if a.Rel == name {
				d.ar[name] = len(a.Vars)
				break
			}
		}
	}
	return d
}

func (d *driver) nextBatch(size int, domain int64) []core.BatchOp {
	var ops []core.BatchOp
	for i := 0; i < size; i++ {
		rel := d.rels[d.rng.Intn(len(d.rels))]
		if rows := d.live[rel]; len(rows) > 0 && d.rng.Intn(3) == 0 {
			j := d.rng.Intn(len(rows))
			ops = append(ops, core.BatchOp{Rel: rel, Row: rows[j], Mult: -1})
			d.live[rel] = append(rows[:j], rows[j+1:]...)
			continue
		}
		t := make(tuple.Tuple, d.ar[rel])
		for j := range t {
			t[j] = d.rng.Int63n(domain)
		}
		ops = append(ops, core.BatchOp{Rel: rel, Row: t, Mult: 1})
		d.live[rel] = append(d.live[rel], t)
	}
	return ops
}

// TestFederatedMatchesSingleEngine is the correctness anchor: federated
// enumeration — live and through snapshots — must equal a single-engine
// reference at every epoch, for K ∈ {1, 2, 4, 8} and Workers ∈ {1, 2, 8},
// across all routing shapes. Run with -race to cover the parallel
// prepare/apply and the parallel shard preprocessing.
func TestFederatedMatchesSingleEngine(t *testing.T) {
	for _, qs := range propQueries {
		for _, k := range []int{1, 2, 4, 8} {
			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/K=%d/W=%d", qs, k, workers), func(t *testing.T) {
					q := query.MustParse(qs)
					eopts := core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: workers}
					ref, err := core.New(q, eopts)
					if err != nil {
						t.Fatal(err)
					}
					defer ref.Close()
					f, err := New(q, Options{Shards: k, Engine: eopts})
					if err != nil {
						t.Fatal(err)
					}
					defer f.Close()
					db := randomDB(q, rand.New(rand.NewSource(77)), 60, 12)
					if err := core.Preprocess(ref, db.Clone()); err != nil {
						t.Fatal(err)
					}
					if err := f.Preprocess(db); err != nil {
						t.Fatal(err)
					}

					type held struct {
						epoch uint64
						fed   *Snapshot
						ref   *core.Snapshot
					}
					var kept []held
					check := func(label string) {
						t.Helper()
						if fe, re := f.Epoch(), ref.Epoch(); fe != re {
							t.Fatalf("%s: federation epoch %d, single-engine epoch %d", label, fe, re)
						}
						sameResultMap(t, label+"/live", resultMap(f.Enumerate), resultMap(ref.Enumerate))
						fs, rs := f.Snapshot(), ref.Snapshot()
						sameResultMap(t, label+"/snapshot", resultMap(fs.Enumerate), resultMap(rs.Enumerate))
						if fs.Epoch() != f.Epoch() {
							t.Fatalf("%s: snapshot epoch %d != federation epoch %d", label, fs.Epoch(), f.Epoch())
						}
						kept = append(kept, held{epoch: fs.Epoch(), fed: fs, ref: rs})
					}
					check("epoch 1")
					drv := newDriver(q, 99)
					for c := 0; c < 6; c++ {
						ops := drv.nextBatch(30, 12)
						if err := ref.CommitBatch(ops); err != nil {
							t.Fatalf("commit %d (single): %v", c, err)
						}
						if err := f.Commit(ops); err != nil {
							t.Fatalf("commit %d (federated): %v", c, err)
						}
						check(fmt.Sprintf("epoch %d", c+2))
					}
					if n, rn := f.N(), ref.N(); n != rn {
						t.Errorf("N = %d, single-engine N = %d", n, rn)
					}
					// Held snapshots must still observe their own epochs
					// after all later commits (copy-on-write across shards).
					for _, h := range kept {
						sameResultMap(t, fmt.Sprintf("held snapshot epoch %d", h.epoch),
							resultMap(h.fed.Enumerate), resultMap(h.ref.Enumerate))
						h.fed.Close()
						h.ref.Close()
					}
				})
			}
		}
	}
}

// TestConcurrentReadersDuringCommits covers the reader/writer protocol
// under -race: snapshot readers enumerate while commits run.
func TestConcurrentReadersDuringCommits(t *testing.T) {
	q := query.MustParse("Q(A, B, C) = R(A, B), S(A, C)")
	f, err := New(q, Options{Shards: 2, Engine: core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Preprocess(randomDB(q, rand.New(rand.NewSource(7)), 80, 10)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := f.Snapshot()
				resultMap(s.Enumerate)
				s.Close()
			}
		}()
	}
	drv := newDriver(q, 13)
	for c := 0; c < 20; c++ {
		if err := f.Commit(drv.nextBatch(20, 10)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestCrossShardAllOrNothing is the satellite coverage: a validation
// failure on shard k must leave EVERY shard's state and epoch untouched —
// including shards whose sub-batches had already been prepared — and the
// federation errors must be programmable (ShardError via errors.As,
// sentinels and structured errors reachable through it).
func TestCrossShardAllOrNothing(t *testing.T) {
	q := query.MustParse("Q(A, B, C) = R(A, B), S(A, C)")
	f, err := New(q, Options{Shards: 4, Engine: core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Preprocess(randomDB(q, rand.New(rand.NewSource(41)), 60, 8)); err != nil {
		t.Fatal(err)
	}
	// Spread valid inserts over many keys (touching all shards), then an
	// over-delete of a row that was never stored: the owning shard's
	// prepare fails after others prepared.
	var ops []core.BatchOp
	for v := int64(0); v < 32; v++ {
		ops = append(ops, core.BatchOp{Rel: "R", Row: tuple.Tuple{1000 + v, v}, Mult: 1})
	}
	ops = append(ops, core.BatchOp{Rel: "S", Row: tuple.Tuple{5555, 5555}, Mult: -3})

	fedEpoch := f.Epoch()
	shardEpochs := make([]uint64, f.Shards())
	for i, e := range f.shards {
		shardEpochs[i] = e.Epoch()
	}
	before := resultMap(f.Enumerate)
	n := f.N()

	err = f.Commit(ops)
	if err == nil {
		t.Fatal("over-deleting cross-shard batch accepted")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("cross-shard validation failure returned %T, want *ShardError", err)
	}
	if se.Shard < 0 || se.Shard >= f.Shards() {
		t.Errorf("ShardError.Shard = %d, want in [0, %d)", se.Shard, f.Shards())
	}
	var me *relation.MultiplicityError
	if !errors.As(err, &me) {
		t.Errorf("MultiplicityError not reachable through ShardError: %v", err)
	}

	if got := f.Epoch(); got != fedEpoch {
		t.Errorf("federation epoch moved %d → %d on a failed commit", fedEpoch, got)
	}
	for i, e := range f.shards {
		if got := e.Epoch(); got != shardEpochs[i] {
			t.Errorf("shard %d epoch moved %d → %d on a failed commit", i, shardEpochs[i], got)
		}
	}
	sameResultMap(t, "failed cross-shard commit", resultMap(f.Enumerate), before)
	if got := f.N(); got != n {
		t.Errorf("N moved %d → %d on a failed commit", n, got)
	}

	// Scatter-time failures carry no shard attribution: the shards were
	// never involved.
	err = f.Commit([]core.BatchOp{{Rel: "nope", Row: tuple.Tuple{1, 2}, Mult: 1}})
	if !errors.Is(err, core.ErrUnknownRelation) {
		t.Errorf("unknown relation returned %v, want ErrUnknownRelation", err)
	}
	if errors.As(err, &se) {
		t.Errorf("scatter-time unknown relation wrongly attributed to shard %d", se.Shard)
	}
	err = f.Commit([]core.BatchOp{{Rel: "R", Row: tuple.Tuple{1, 2, 3}, Mult: 1}})
	var ae *relation.ArityError
	if !errors.As(err, &ae) {
		t.Errorf("arity mismatch returned %v, want *relation.ArityError", err)
	}
	if errors.As(err, &se) {
		t.Errorf("scatter-time arity error wrongly attributed to shard %d", se.Shard)
	}
	sameResultMap(t, "failed scatter", resultMap(f.Enumerate), before)
}

// TestShardErrorUnwrap pins the error chain: sentinel values and
// structured errors pass through ShardError.
func TestShardErrorUnwrap(t *testing.T) {
	inner := &relation.MultiplicityError{Relation: "R", Tuple: tuple.Tuple{1}, Have: 0, Delta: -1}
	se := &ShardError{Shard: 3, Err: inner}
	var me *relation.MultiplicityError
	if !errors.As(se, &me) || me != inner {
		t.Error("errors.As does not reach the wrapped MultiplicityError")
	}
	if !errors.Is(&ShardError{Shard: 1, Err: core.ErrStatic}, core.ErrStatic) {
		t.Error("errors.Is does not reach a wrapped sentinel")
	}
	if se.Error() == "" {
		t.Error("empty ShardError message")
	}
}

// TestFederationUpdateParity covers the single-op path (Update) and RelID
// resolution against a single-engine reference.
func TestFederationUpdateParity(t *testing.T) {
	q := query.MustParse("Q(A, B, C) = R(A, B), S(A, C)")
	eopts := core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5}
	ref, err := core.New(q, eopts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(q, Options{Shards: 3, Engine: eopts})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db := randomDB(q, rand.New(rand.NewSource(55)), 40, 8)
	if err := core.Preprocess(ref, db.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := f.Preprocess(db); err != nil {
		t.Fatal(err)
	}
	if id := f.RelID("R"); id == 0 || id != ref.RelID("R") {
		t.Errorf("federation RelID(R) = %d, single-engine %d", id, ref.RelID("R"))
	}
	if id := f.RelID("nope"); id != 0 {
		t.Errorf("RelID(nope) = %d, want 0", id)
	}
	steps := []struct {
		rel  string
		row  tuple.Tuple
		mult int64
	}{
		{"R", tuple.Tuple{100, 1}, 2},
		{"S", tuple.Tuple{100, 2}, 1},
		{"R", tuple.Tuple{100, 1}, -1},
		{"S", tuple.Tuple{3, 3}, 0}, // no-op, no epoch
	}
	for _, st := range steps {
		if err := ref.Update(st.rel, st.row, st.mult); err != nil {
			t.Fatal(err)
		}
		if err := f.Update(st.rel, st.row, st.mult); err != nil {
			t.Fatal(err)
		}
		if fe, re := f.Epoch(), ref.Epoch(); fe != re {
			t.Fatalf("after %v: federation epoch %d, single %d", st, fe, re)
		}
		sameResultMap(t, fmt.Sprint(st), resultMap(f.Enumerate), resultMap(ref.Enumerate))
	}
	if err := f.Update("nope", tuple.Tuple{1}, 1); !errors.Is(err, core.ErrUnknownRelation) {
		t.Errorf("Update on unknown relation returned %v", err)
	}
	// Over-delete through the single-op path: all-or-nothing, typed.
	err = f.Update("R", tuple.Tuple{4242, 4242}, -1)
	var me *relation.MultiplicityError
	if !errors.As(err, &me) {
		t.Errorf("single-op over-delete returned %v, want MultiplicityError", err)
	}
}

// TestShardedCommitZeroAllocs pins the steady-state federated commit at
// zero heap allocations per commit: scatter into pooled sub-batches,
// per-shard prepare/apply on warmed engines, parallel apply via the
// persistent runners and the reused barrier.
func TestShardedCommitZeroAllocs(t *testing.T) {
	q := query.MustParse("Q(A, B, C) = R(A, B), S(A, C)")
	f, err := New(q, Options{Shards: 4, Engine: core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Preprocess(randomDB(q, rand.New(rand.NewSource(61)), 400, 40)); err != nil {
		t.Fatal(err)
	}
	const rows = 64
	ops := make([]core.BatchOp, 0, 2*rows)
	buf := make(tuple.Tuple, 4*rows)
	next := int64(10000)
	rid, sid := f.RelID("R"), f.RelID("S")
	cycle := func() {
		ops = ops[:0]
		for i := 0; i < rows; i++ {
			tu := buf[4*i : 4*i+2]
			tu[0], tu[1] = next, next+1
			ops = append(ops, core.BatchOp{Rel: "R", RelID: rid, Row: tu, Mult: 1})
			tu2 := buf[4*i+2 : 4*i+4]
			tu2[0], tu2[1] = next, next+2
			ops = append(ops, core.BatchOp{Rel: "S", RelID: sid, Row: tu2, Mult: 1})
			next += 3
		}
		if err := f.Commit(ops); err != nil {
			t.Fatal(err)
		}
		for i := range ops {
			ops[i].Mult = -1
		}
		if err := f.Commit(ops); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Errorf("steady federated commit cycle allocates %v per run, want 0", n)
	}
}

// TestShardKeySelection pins the routing choices per query shape.
func TestShardKeySelection(t *testing.T) {
	cases := []struct {
		q      string
		vars   string
		concat bool
	}{
		{"Q(A, B, C) = R(A, B), S(A, C)", "(A)", true},
		{"Q(C, E) = R(A), S(A, B), T(A, B, C), U(A, D), V(A, D, E)", "(A)", false},
		{"Q(A, C) = R(A, B), T(C)", "(A)", true},
		{"Q() = R(A, B), S(B)", "(B)", false},
	}
	for _, c := range cases {
		f, err := New(query.MustParse(c.q), Options{Shards: 2})
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		vars, concat := f.ShardVars()
		if got := vars.String(); got != c.vars || concat != c.concat {
			t.Errorf("%s: shard key %s concat=%v, want %s concat=%v", c.q, got, concat, c.vars, c.concat)
		}
		f.Close()
	}
}
