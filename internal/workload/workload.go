// Package workload generates the synthetic databases and update streams
// used by the examples and the benchmark harness. The paper is evaluated by
// complexity analysis rather than on named datasets, so the generators here
// are designed to exercise the engine's distinct code paths: heavy and
// light join keys (Zipf skew), square matrices (Example 28), the
// star-shaped 4-relation workload of Example 19, bounded-degree databases
// (Figure 4's bounded-degree row), and the OMv reduction workload of
// Appendix B.8.
package workload

import (
	"math"
	"math/rand"

	"ivmeps/internal/naive"
	"ivmeps/internal/query"
	"ivmeps/internal/relation"
	"ivmeps/internal/tuple"
)

// Zipf draws values in [0, n) with P(k) ∝ 1/(k+1)^s using the standard
// library's bounded Zipf generator; s must be > 1.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	return &Zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

// Draw samples one value.
func (z *Zipf) Draw() int64 { return int64(z.z.Uint64()) }

// TwoPath generates data for Q(A,C) = R(A,B), S(B,C) (Example 28): n tuples
// per relation. The join variable B is drawn from a Zipf distribution with
// the given skew (s > 1), so a handful of B-values are heavy and the rest
// form a light tail; A and C are uniform over [0, n).
func TwoPath(rng *rand.Rand, n int, skew float64) naive.Database {
	r := relation.New("R", tuple.NewSchema("A", "B"))
	s := relation.New("S", tuple.NewSchema("B", "C"))
	zb := NewZipf(rng, skew, uint64(n))
	for r.Size() < n {
		r.Set(tuple.Tuple{rng.Int63n(int64(n)), zb.Draw()}, 1)
	}
	for s.Size() < n {
		s.Set(tuple.Tuple{zb.Draw(), rng.Int63n(int64(n))}, 1)
	}
	return naive.Database{"R": r, "S": s}
}

// Matrix generates the matrix-multiplication instance of Example 28: R and
// S encode n×n Boolean matrices with density d ∈ (0, 1], so the database
// size is N ≈ 2·d·n². Every B value has degree ≈ d·n: at ε = 1/2 and
// d close to 1, all B values are heavy, which is the regime the example's
// O(N^(3/2)) preprocessing / O(N^(1/2)) delay analysis targets.
func Matrix(rng *rand.Rand, n int, density float64) naive.Database {
	r := relation.New("R", tuple.NewSchema("A", "B"))
	s := relation.New("S", tuple.NewSchema("B", "C"))
	for i := int64(0); i < int64(n); i++ {
		for j := int64(0); j < int64(n); j++ {
			if density >= 1 || rng.Float64() < density {
				r.Set(tuple.Tuple{i, j}, 1)
			}
			if density >= 1 || rng.Float64() < density {
				s.Set(tuple.Tuple{i, j}, 1)
			}
		}
	}
	return naive.Database{"R": r, "S": s}
}

// TwoPathUnary generates data for Q(A) = R(A,B), S(B) (Example 29): R has n
// tuples with Zipf-skewed B, S has n/2 uniform B values.
func TwoPathUnary(rng *rand.Rand, n int, skew float64) naive.Database {
	r := relation.New("R", tuple.NewSchema("A", "B"))
	s := relation.New("S", tuple.NewSchema("B"))
	zb := NewZipf(rng, skew, uint64(n))
	for r.Size() < n {
		r.Set(tuple.Tuple{rng.Int63n(int64(n)), zb.Draw()}, 1)
	}
	for s.Size() < n/2 {
		s.Set(tuple.Tuple{rng.Int63n(int64(n))}, 1)
	}
	return naive.Database{"R": r, "S": s}
}

// Star19 generates data for Example 19's query
//
//	Q(C,D,E,F) = R(A,B,D), S(A,B,E), T(A,C,F), U(A,C,G)
//
// with n tuples per relation. A and B are Zipf-skewed so that both the
// heavy-A and heavy-(A,B) strategies receive traffic; the free variables
// are uniform.
func Star19(rng *rand.Rand, n int, skew float64) naive.Database {
	dom := int64(n)
	za := NewZipf(rng, skew, uint64(max(2, n/4)))
	zb := NewZipf(rng, skew, uint64(max(2, n/4)))
	mk := func(name string, vars ...tuple.Variable) *relation.Relation {
		return relation.New(name, tuple.NewSchema(vars...))
	}
	r := mk("R", "A", "B", "D")
	s := mk("S", "A", "B", "E")
	t := mk("T", "A", "C", "F")
	u := mk("U", "A", "C", "G")
	for r.Size() < n {
		r.Set(tuple.Tuple{za.Draw(), zb.Draw(), rng.Int63n(dom)}, 1)
	}
	for s.Size() < n {
		s.Set(tuple.Tuple{za.Draw(), zb.Draw(), rng.Int63n(dom)}, 1)
	}
	for t.Size() < n {
		t.Set(tuple.Tuple{za.Draw(), rng.Int63n(int64(max(2, n/8))), rng.Int63n(dom)}, 1)
	}
	for u.Size() < n {
		u.Set(tuple.Tuple{za.Draw(), rng.Int63n(int64(max(2, n/8))), rng.Int63n(dom)}, 1)
	}
	return naive.Database{"R": r, "S": s, "T": t, "U": u}
}

// FreeConnex18 generates data for Example 18's free-connex query
// Q(A,D,E) = R(A,B,C), S(A,B,D), T(A,E).
func FreeConnex18(rng *rand.Rand, n int) naive.Database {
	dom := int64(n)
	keys := int64(max(2, n/4))
	r := relation.New("R", tuple.NewSchema("A", "B", "C"))
	s := relation.New("S", tuple.NewSchema("A", "B", "D"))
	t := relation.New("T", tuple.NewSchema("A", "E"))
	for r.Size() < n {
		r.Set(tuple.Tuple{rng.Int63n(keys), rng.Int63n(keys), rng.Int63n(dom)}, 1)
	}
	for s.Size() < n {
		s.Set(tuple.Tuple{rng.Int63n(keys), rng.Int63n(keys), rng.Int63n(dom)}, 1)
	}
	for t.Size() < n {
		t.Set(tuple.Tuple{rng.Int63n(keys), rng.Int63n(dom)}, 1)
	}
	return naive.Database{"R": r, "S": s, "T": t}
}

// BoundedDegree generates TwoPath data in which every B value has degree at
// most c in both relations (the bounded-degree databases of Figure 4: with
// the constant bound in place of N^ε, preprocessing is linear and delay
// constant).
func BoundedDegree(rng *rand.Rand, n, c int) naive.Database {
	r := relation.New("R", tuple.NewSchema("A", "B"))
	s := relation.New("S", tuple.NewSchema("B", "C"))
	nb := (n + c - 1) / c
	for b := 0; b < nb; b++ {
		for k := 0; k < c && r.Size() < n; k++ {
			r.Set(tuple.Tuple{rng.Int63n(int64(n)), int64(b)}, 1)
		}
		for k := 0; k < c && s.Size() < n; k++ {
			s.Set(tuple.Tuple{int64(b), rng.Int63n(int64(n))}, 1)
		}
	}
	return naive.Database{"R": r, "S": s}
}

// Update is one single-tuple update.
type Update struct {
	Rel   string
	Tuple tuple.Tuple
	Mult  int64
}

// UpdateStream produces count updates against db's relations: inserts of
// fresh random tuples and deletes of existing ones, at the given delete
// fraction. Deletes always target currently present tuples, so streams
// never trigger rejections. The stream is reproducible from rng; db is used
// only to track membership and is modified to mirror the stream.
func UpdateStream(rng *rand.Rand, q *query.Query, db naive.Database, count int, deleteFrac float64) []Update {
	names := q.RelationNames()
	var out []Update
	for len(out) < count {
		rel := names[rng.Intn(len(names))]
		r := db[rel]
		if rng.Float64() < deleteFrac && r.Size() > 0 {
			// Delete a random existing tuple: walk a few steps from the head.
			e := r.First()
			steps := rng.Intn(32)
			for i := 0; i < steps && r.Next(e) != nil; i++ {
				e = r.Next(e)
			}
			u := Update{Rel: rel, Tuple: e.Tuple.Clone(), Mult: -e.Mult}
			r.MustAdd(u.Tuple, u.Mult)
			out = append(out, u)
			continue
		}
		schema := r.Schema()
		t := make(tuple.Tuple, len(schema))
		for j := range t {
			t[j] = rng.Int63n(int64(1 << 30))
		}
		// Bias join keys to small domains so updates hit existing keys.
		for j, v := range schema {
			if v == "B" || v == "A" {
				t[j] = rng.Int63n(int64(max(16, r.Size()/4+1)))
			}
		}
		u := Update{Rel: rel, Tuple: t, Mult: 1}
		if r.Mult(t) > 0 {
			continue
		}
		r.MustAdd(t, 1)
		out = append(out, u)
	}
	return out
}

// OMvInstance is the Online Matrix-Vector Multiplication reduction workload
// of Appendix B.8: an n×n Boolean matrix M encoded in R(A,B), and n rounds,
// each a column vector v_r encoded as updates to S(B) followed by an
// enumeration of Q(A) = R(A,B), S(B), whose result is M·v_r.
type OMvInstance struct {
	N      int
	Matrix naive.Database // R filled with M; S empty
	Rounds [][]int64      // Rounds[r] lists the B values set in round r
}

// NewOMvInstance generates a random OMv instance with matrix density d.
func NewOMvInstance(rng *rand.Rand, n int, density float64) *OMvInstance {
	r := relation.New("R", tuple.NewSchema("A", "B"))
	s := relation.New("S", tuple.NewSchema("B"))
	for i := int64(0); i < int64(n); i++ {
		for j := int64(0); j < int64(n); j++ {
			if rng.Float64() < density {
				r.Set(tuple.Tuple{i, j}, 1)
			}
		}
	}
	inst := &OMvInstance{N: n, Matrix: naive.Database{"R": r, "S": s}}
	for round := 0; round < n; round++ {
		var vec []int64
		for j := int64(0); j < int64(n); j++ {
			if rng.Float64() < density {
				vec = append(vec, j)
			}
		}
		inst.Rounds = append(inst.Rounds, vec)
	}
	return inst
}

// Sizes returns a geometric sweep of database sizes from lo to hi with the
// given number of points, for exponent fitting.
func Sizes(lo, hi, points int) []int {
	if points < 2 {
		return []int{hi}
	}
	out := make([]int, points)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(points-1))
	x := float64(lo)
	for i := range out {
		out[i] = int(math.Round(x))
		x *= ratio
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
