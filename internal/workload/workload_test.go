package workload

import (
	"math/rand"
	"testing"

	"ivmeps/internal/naive"
	"ivmeps/internal/query"
	"ivmeps/internal/tuple"
)

func TestTwoPathSizesAndSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := TwoPath(rng, 500, 1.2)
	if db["R"].Size() != 500 || db["S"].Size() != 500 {
		t.Fatalf("sizes %d %d", db["R"].Size(), db["S"].Size())
	}
	// Zipf skew: the most frequent B value should dominate.
	ix := db["R"].EnsureIndex(tuple.NewSchema("B"))
	maxDeg := 0
	ix.ForEachKey(func(key tuple.Tuple, c int) {
		if c > maxDeg {
			maxDeg = c
		}
	})
	if maxDeg < 20 {
		t.Fatalf("max B degree %d: no heavy keys generated", maxDeg)
	}
	// Joinable: result non-empty.
	res := naive.MustEval(query.MustParse("Q(A, C) = R(A, B), S(B, C)"), db)
	if res.Size() == 0 {
		t.Fatalf("TwoPath produced empty join")
	}
}

func TestMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := Matrix(rng, 10, 1.0)
	if db["R"].Size() != 100 || db["S"].Size() != 100 {
		t.Fatalf("dense matrix sizes wrong: %d %d", db["R"].Size(), db["S"].Size())
	}
	res := naive.MustEval(query.MustParse("Q(A, C) = R(A, B), S(B, C)"), db)
	if res.Size() != 100 {
		t.Fatalf("dense product size %d, want 100", res.Size())
	}
	if res.Mult(tuple.Tuple{0, 0}) != 10 {
		t.Fatalf("dense product multiplicity %d, want 10", res.Mult(tuple.Tuple{0, 0}))
	}
	sparse := Matrix(rng, 20, 0.3)
	if sparse["R"].Size() == 0 || sparse["R"].Size() >= 400 {
		t.Fatalf("sparse matrix size %d", sparse["R"].Size())
	}
}

func TestTwoPathUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := TwoPathUnary(rng, 200, 1.3)
	if db["R"].Size() != 200 || db["S"].Size() != 100 {
		t.Fatalf("sizes %d %d", db["R"].Size(), db["S"].Size())
	}
	res := naive.MustEval(query.MustParse("Q(A) = R(A, B), S(B)"), db)
	if res.Size() == 0 {
		t.Fatalf("empty join")
	}
}

func TestStar19(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := Star19(rng, 150, 1.4)
	q := query.MustParse("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)")
	for _, name := range q.RelationNames() {
		if db[name].Size() != 150 {
			t.Fatalf("%s size %d", name, db[name].Size())
		}
	}
	if naive.MustEval(q, db).Size() == 0 {
		t.Fatalf("empty join")
	}
}

func TestFreeConnex18(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := FreeConnex18(rng, 120)
	q := query.MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)")
	if naive.MustEval(q, db).Size() == 0 {
		t.Fatalf("empty join")
	}
}

func TestBoundedDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := 4
	db := BoundedDegree(rng, 200, c)
	for _, rel := range []string{"R", "S"} {
		ix := db[rel].EnsureIndex(tuple.NewSchema("B"))
		ix.ForEachKey(func(key tuple.Tuple, deg int) {
			if deg > c {
				t.Fatalf("%s degree %d > %d", rel, deg, c)
			}
		})
	}
}

func TestUpdateStreamConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	db := TwoPath(rng, 100, 1.2)
	mirror := db.Clone()
	updates := UpdateStream(rng, q, db, 300, 0.4)
	if len(updates) != 300 {
		t.Fatalf("stream length %d", len(updates))
	}
	// Replaying the stream against the mirror never under-deletes and ends
	// in the same state as db (which UpdateStream mutated).
	for _, u := range updates {
		if mirror[u.Rel].Mult(u.Tuple)+u.Mult < 0 {
			t.Fatalf("stream under-deletes %v", u)
		}
		mirror[u.Rel].MustAdd(u.Tuple, u.Mult)
	}
	for name, r := range db {
		if r.Size() != mirror[name].Size() {
			t.Fatalf("replay diverged on %s", name)
		}
	}
}

func TestOMvInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := NewOMvInstance(rng, 12, 0.5)
	if inst.N != 12 || len(inst.Rounds) != 12 {
		t.Fatalf("instance shape wrong")
	}
	if inst.Matrix["R"].Size() == 0 || inst.Matrix["S"].Size() != 0 {
		t.Fatalf("matrix encoding wrong")
	}
}

func TestSizes(t *testing.T) {
	s := Sizes(100, 10000, 5)
	if len(s) != 5 || s[0] != 100 || s[4] != 10000 {
		t.Fatalf("Sizes = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("not increasing: %v", s)
		}
	}
	if got := Sizes(10, 100, 1); len(got) != 1 || got[0] != 100 {
		t.Fatalf("degenerate Sizes = %v", got)
	}
}
