package ivmeps_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivmeps"
	"ivmeps/internal/wal"
)

// The durability tests drive the public surface end to end: New with a log
// directory, commits through every mutation entry point, Checkpoint, Close,
// and Open-based recovery — including the crash-shaped failures (kills at
// arbitrary byte offsets, torn tails, bit flips) the write-ahead log exists
// to survive. They import internal/wal only to *inspect* log directories
// (compute the epoch a cut should recover to, count replayable records),
// never to drive recovery.

const durQuery = "Q(A, C) = R(A, B), S(B, C)"

func durParse(t testing.TB) *ivmeps.Query {
	t.Helper()
	q, err := ivmeps.ParseQuery(durQuery)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// durState captures the committed state of e as (canonical result map,
// snapshot epoch).
func durState(t testing.TB, e *ivmeps.Engine) (map[string]int64, uint64) {
	t.Helper()
	s, err := e.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	defer s.Close()
	return publicResultMap(s.Enumerate), s.Epoch()
}

func sameState(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// copyDir clones the log directory so a simulated crash can mutilate the
// copy while the original stays reusable.
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "log")
	if err := os.MkdirAll(dst, 0o777); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// shadowDB mirrors the base relations so the test can generate valid
// deletes, and remembers every committed state by epoch.
type shadowDB struct {
	rows  map[string][][]int64 // live rows per relation (mult folded in by repetition)
	state map[uint64]map[string]int64
}

func TestDurableRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	q := durParse(t)
	opts := ivmeps.Options{Epsilon: 0.5, Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways}}
	e, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load("R", []int64{1, 10}, []int64{2, 10}); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("S", []int64{10, 7}); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	// Exercise every mutation entry point: single-tuple, one-relation batch,
	// multi-relation batch, and a batch whose ops cancel to a net no-op
	// (which still publishes an epoch the log must reproduce).
	if err := e.Insert("R", []int64{3, 10}); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("R", []int64{1, 10}); err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyBatch("S", [][]int64{{10, 8}, {11, 9}}, []int64{2, 1}); err != nil {
		t.Fatal(err)
	}
	b := e.NewBatch()
	b.Insert("R", []int64{4, 11})
	b.Apply("S", []int64{10, 7}, 3)
	if err := e.Commit(b); err != nil {
		t.Fatal(err)
	}
	b = e.NewBatch()
	b.Insert("R", []int64{5, 12})
	b.Delete("R", []int64{5, 12})
	if err := e.Commit(b); err != nil {
		t.Fatal(err)
	}
	want, wantEpoch := durState(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ivmeps.Open(q, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, gotEpoch := durState(t, r)
	if gotEpoch != wantEpoch {
		t.Fatalf("recovered epoch %d, want %d", gotEpoch, wantEpoch)
	}
	if !sameState(got, want) {
		t.Fatalf("recovered state %v, want %v", got, want)
	}
	if r.Count() == 0 || r.N() == 0 {
		t.Fatalf("recovered engine empty: count=%d N=%d", r.Count(), r.N())
	}
	// The recovered engine keeps committing durably into the same directory.
	if err := r.Insert("S", []int64{12, 13}); err != nil {
		t.Fatal(err)
	}
	want2, wantEpoch2 := durState(t, r)
	if wantEpoch2 != wantEpoch+1 {
		t.Fatalf("post-recovery commit bumped epoch to %d, want %d", wantEpoch2, wantEpoch+1)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := ivmeps.Open(q, opts)
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	defer r2.Close()
	got2, gotEpoch2 := durState(t, r2)
	if gotEpoch2 != wantEpoch2 || !sameState(got2, want2) {
		t.Fatalf("second recovery: epoch %d state %v, want epoch %d state %v", gotEpoch2, got2, wantEpoch2, want2)
	}
}

// buildDurableHistory creates a durable engine, commits n randomized batches
// (recording the committed state at every epoch), checkpoints once midway,
// closes the engine, and returns the log directory plus the shadow record.
func buildDurableHistory(t *testing.T, dir string, workers, n int, rng *rand.Rand) *shadowDB {
	t.Helper()
	q := durParse(t)
	opts := ivmeps.Options{
		Epsilon: 0.5, Workers: workers,
		Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways, SegmentBytes: 512},
	}
	e, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	sh := &shadowDB{rows: map[string][][]int64{}, state: map[uint64]map[string]int64{}}
	seed := func(rel string, rows ...[]int64) {
		t.Helper()
		for _, row := range rows {
			if err := e.Load(rel, row); err != nil {
				t.Fatal(err)
			}
			sh.rows[rel] = append(sh.rows[rel], row)
		}
	}
	seed("R", []int64{1, 1}, []int64{2, 1})
	seed("S", []int64{1, 3})
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	record := func() {
		t.Helper()
		st, epoch := durState(t, e)
		sh.state[epoch] = st
	}
	record()
	for i := 0; i < n; i++ {
		b := e.NewBatch()
		nops := 1 + rng.Intn(4)
		for j := 0; j < nops; j++ {
			rel := "R"
			if rng.Intn(2) == 1 {
				rel = "S"
			}
			if live := sh.rows[rel]; len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				b.Delete(rel, live[k])
				sh.rows[rel] = append(live[:k], live[k+1:]...)
			} else {
				row := []int64{rng.Int63n(8), rng.Int63n(8)}
				b.Insert(rel, row)
				sh.rows[rel] = append(sh.rows[rel], row)
			}
		}
		if err := e.Commit(b); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		record()
		if i == n/2 {
			if err := e.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return sh
}

// cutPoint describes one simulated kill: every byte of the log written at or
// after the global offset never reached disk.
type cutPoint struct {
	segIdx int   // index into the seq-ordered segment list
	offset int64 // byte length the segment is cut to
}

// applyCut truncates the chosen segment and deletes every later one,
// producing exactly the directory a crash at that write position leaves.
func applyCut(t testing.TB, dir string, cut cutPoint) {
	t.Helper()
	segs, _, err := wal.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[cut.segIdx].Path, cut.offset); err != nil {
		t.Fatal(err)
	}
	for _, s := range segs[cut.segIdx+1:] {
		if err := os.Remove(s.Path); err != nil {
			t.Fatal(err)
		}
	}
}

// expectEpoch computes the epoch recovery must land on for a cut directory:
// the last record of the longest intact log prefix, or the newest checkpoint
// epoch when that is higher (a checkpoint is only ever written after its
// epoch is in the synced log, so it can outlive a cut tail).
func expectEpoch(t testing.TB, dir string) uint64 {
	t.Helper()
	segs, ckpts, err := wal.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var epoch uint64
	for _, c := range ckpts {
		if ck, err := wal.LoadCheckpoint(c.Path); err == nil && ck.Epoch > epoch {
			epoch = ck.Epoch
		}
	}
	for _, s := range segs {
		sd, err := wal.ReadSegment(s.Path)
		if err != nil {
			break // torn header: nothing in this segment counts
		}
		if n := len(sd.Records); n > 0 {
			if last := sd.Records[n-1].Epoch; last > epoch {
				epoch = last
			}
		}
		if sd.Tail != nil {
			break
		}
	}
	return epoch
}

// TestCrashRecoveryRandomCut is the durability headline: kill the process at
// an arbitrary byte offset of the log — mid-record, mid-header, on a segment
// boundary — and Open must recover exactly the committed prefix the surviving
// bytes describe, epoch-exact, at every worker count.
func TestCrashRecoveryRandomCut(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			dir := filepath.Join(t.TempDir(), "log")
			rng := rand.New(rand.NewSource(int64(workers)))
			sh := buildDurableHistory(t, dir, workers, 24, rng)

			segs, _, err := wal.ScanDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var cuts []cutPoint
			sizes := make([]int64, len(segs))
			var total int64
			for i, s := range segs {
				fi, err := os.Stat(s.Path)
				if err != nil {
					t.Fatal(err)
				}
				sizes[i] = fi.Size()
				total += fi.Size()
				// Boundary cuts: empty file, bare header, full file.
				cuts = append(cuts, cutPoint{i, 0}, cutPoint{i, min(16, fi.Size())}, cutPoint{i, fi.Size()})
			}
			for len(cuts) < len(segs)*3+24 {
				g := rng.Int63n(total + 1)
				for i := range sizes {
					if g <= sizes[i] {
						cuts = append(cuts, cutPoint{i, g})
						break
					}
					g -= sizes[i]
				}
			}

			q := durParse(t)
			for ci, cut := range cuts {
				work := copyDir(t, dir)
				applyCut(t, work, cut)
				want := expectEpoch(t, work)
				opts := ivmeps.Options{
					Epsilon: 0.5, Workers: workers,
					Durability: ivmeps.Durability{Dir: work, Sync: ivmeps.SyncAlways, SegmentBytes: 512},
				}
				r, err := ivmeps.Open(q, opts)
				if err != nil {
					t.Fatalf("cut %d (%+v): Open: %v", ci, cut, err)
				}
				got, epoch := durState(t, r)
				if epoch != want {
					t.Fatalf("cut %d (%+v): recovered epoch %d, want %d", ci, cut, epoch, want)
				}
				wantState, ok := sh.state[epoch]
				if !ok {
					t.Fatalf("cut %d (%+v): recovered epoch %d was never committed", ci, cut, epoch)
				}
				if !sameState(got, wantState) {
					t.Fatalf("cut %d (%+v): recovered state %v, want %v at epoch %d", ci, cut, got, wantState, epoch)
				}
				// Periodically prove the recovered log accepts and survives new
				// commits: commit, close, and recover once more.
				if ci%8 == 0 {
					if err := r.Insert("R", []int64{7, 7}); err != nil {
						t.Fatal(err)
					}
					want2, wantEpoch2 := durState(t, r)
					if wantEpoch2 != epoch+1 {
						t.Fatalf("cut %d: post-recovery epoch %d, want %d", ci, wantEpoch2, epoch+1)
					}
					if err := r.Close(); err != nil {
						t.Fatal(err)
					}
					r2, err := ivmeps.Open(q, opts)
					if err != nil {
						t.Fatalf("cut %d: re-Open: %v", ci, err)
					}
					got2, epoch2 := durState(t, r2)
					if epoch2 != wantEpoch2 || !sameState(got2, want2) {
						t.Fatalf("cut %d: second recovery diverged", ci)
					}
					r2.Close()
				} else {
					r.Close()
				}
			}
		})
	}
}

// TestCheckpointBoundsReplay proves recovery cost is proportional to the
// post-checkpoint tail: after Checkpoint, only the commits made since are
// replayed.
func TestCheckpointBoundsReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	q := durParse(t)
	opts := ivmeps.Options{Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways}}
	e, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load("R", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("S", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := e.Insert("R", []int64{i, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	const tail = 5
	for i := int64(0); i < tail; i++ {
		if err := e.Insert("S", []int64{1, 10 + i}); err != nil {
			t.Fatal(err)
		}
	}
	want, wantEpoch := durState(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.BeginRecovery(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint.Epoch != wantEpoch-tail {
		t.Fatalf("newest checkpoint at epoch %d, want %d", rec.Checkpoint.Epoch, wantEpoch-tail)
	}
	replays := 0
	if err := rec.Replay(false, func(wal.Record) error { replays++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replays != tail {
		t.Fatalf("recovery replays %d records, want only the %d-record tail", replays, tail)
	}

	r, err := ivmeps.Open(q, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	got, epoch := durState(t, r)
	if epoch != wantEpoch || !sameState(got, want) {
		t.Fatalf("recovered epoch %d state %v, want epoch %d state %v", epoch, got, wantEpoch, want)
	}
}

// TestBitFlipRecovery flips single bytes across the log: a flip in the
// physical tail may be truncated away (it is indistinguishable from a torn
// write), anything else must surface as CorruptLogError — never as a
// successfully opened engine with wrong state.
func TestBitFlipRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	rng := rand.New(rand.NewSource(7))
	sh := buildDurableHistory(t, dir, 1, 12, rng)
	segs, _, err := wal.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	q := durParse(t)
	for si, seg := range segs {
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 24; trial++ {
			pos := rng.Intn(len(data))
			work := copyDir(t, dir)
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << uint(rng.Intn(8))
			if err := os.WriteFile(filepath.Join(work, filepath.Base(seg.Path)), mut, 0o666); err != nil {
				t.Fatal(err)
			}
			r, err := ivmeps.Open(q, ivmeps.Options{Epsilon: 0.5, Durability: ivmeps.Durability{Dir: work, Sync: ivmeps.SyncAlways, SegmentBytes: 512}})
			if err != nil {
				var cle *ivmeps.CorruptLogError
				if !errors.As(err, &cle) {
					t.Fatalf("seg %d pos %d: Open failed without CorruptLogError: %v", si, pos, err)
				}
				continue
			}
			// Open succeeded: the flip must have been truncated away as a torn
			// tail, leaving a genuinely committed prefix.
			got, epoch := durState(t, r)
			r.Close()
			want, ok := sh.state[epoch]
			if !ok || !sameState(got, want) {
				t.Fatalf("seg %d pos %d: flip recovered to a state never committed (epoch %d)", si, pos, epoch)
			}
		}
	}
}

func TestDurabilityAPIMisuse(t *testing.T) {
	q := durParse(t)
	dir := filepath.Join(t.TempDir(), "log")

	// Checkpoint without durability.
	e, err := ivmeps.New(q, ivmeps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Load("R", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err == nil || !strings.Contains(err.Error(), "durability") {
		t.Fatalf("Checkpoint without durability = %v", err)
	}
	e.Close()

	// Open without a directory, and on a directory New never initialized.
	if _, err := ivmeps.Open(q, ivmeps.Options{}); err == nil {
		t.Fatal("Open without Durability.Dir succeeded")
	}
	if _, err := ivmeps.Open(q, ivmeps.Options{Durability: ivmeps.Durability{Dir: filepath.Join(t.TempDir(), "empty")}}); err == nil {
		t.Fatal("Open on a never-initialized directory succeeded")
	}

	// Build a real log, then misuse it.
	opts := ivmeps.Options{Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways}}
	d, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load("R", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Build(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// New refuses a populated directory.
	if _, err := ivmeps.New(q, opts); err == nil {
		t.Fatal("New accepted a directory already holding a log")
	}
	// Open under a different query refuses the mismatch.
	q2, err := ivmeps.ParseQuery("Q(A, B) = R(A, B)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ivmeps.Open(q2, opts); err == nil || !strings.Contains(err.Error(), "belongs to query") {
		t.Fatalf("Open under the wrong query = %v", err)
	}
	// Sharded engines refuse durability outright.
	if _, err := ivmeps.NewSharded(q, ivmeps.ShardedOptions{Shards: 2, Options: ivmeps.Options{Durability: ivmeps.Durability{Dir: filepath.Join(t.TempDir(), "s")}}}); err == nil {
		t.Fatal("NewSharded accepted Durability")
	}
}
