package ivmeps

import (
	"fmt"

	"ivmeps/internal/core"
)

// Batch collects single-tuple updates — inserts, deletes, weighted applies
// — across any of the engine's relations, for Engine.Commit (or
// Sharded.Commit) to apply as one atomic maintenance commit. The zero Batch
// obtained from NewBatch is empty; the builder methods never fail
// (validation happens in Commit) and return the batch for chaining:
//
//	b := e.NewBatch()
//	b.Insert("R", []int64{1, 10})
//	b.Delete("S", []int64{10, 7})
//	b.Apply("R", []int64{2, 10}, -2)
//	err := e.Commit(b)
//
// Row slices are referenced, not copied: they must not be mutated until
// Commit returns. Commit leaves the batch intact — Reset it to start the
// next batch reusing its storage (the steady-state Reset/refill/Commit
// cycle performs no heap allocation), or Commit it again to re-apply the
// same updates. A Batch is not safe for concurrent use.
//
// A batch belongs to the engine that created it: the builder resolves each
// relation name to the engine's stable relation id at queue time, so Commit
// validates ids instead of repeating per-op name lookups, and committing a
// batch to a different engine is rejected.
type Batch struct {
	owner   any              // the *Engine or *Sharded that created it
	resolve func(string) int // owner's relation-id table
	lastRel string           // one-entry resolution cache for the
	lastID  int              // common runs-of-one-relation pattern
	ops     []core.BatchOp
}

// NewBatch returns an empty update batch for this engine. The batch may be
// built before or after Build, but only committed after.
func (e *Engine) NewBatch() *Batch { return &Batch{owner: e, resolve: e.e.RelID} }

// Insert queues the single-tuple insert {row → +1} against rel.
func (b *Batch) Insert(rel string, row []int64) *Batch { return b.Apply(rel, row, 1) }

// Delete queues the single-tuple delete {row → −1} against rel. Deletes
// may exceed the stored multiplicity only if earlier ops of the same batch
// cover the difference; otherwise Commit rejects the whole batch with a
// MultiplicityError.
func (b *Batch) Delete(rel string, row []int64) *Batch { return b.Apply(rel, row, -1) }

// Apply queues the single-tuple update {row → mult} against rel: positive
// to insert, negative to delete. A zero mult contributes nothing but is
// still validated by Commit (relation and arity). An unknown relation name
// is detected by Commit, which reports it with ErrUnknownRelation.
func (b *Batch) Apply(rel string, row []int64, mult int64) *Batch {
	if rel != b.lastRel || b.lastID == 0 {
		b.lastRel, b.lastID = rel, b.resolve(rel)
	}
	b.ops = append(b.ops, core.BatchOp{Rel: rel, RelID: b.lastID, Row: row, Mult: mult})
	return b
}

// Len returns the number of queued updates.
func (b *Batch) Len() int { return len(b.ops) }

// Reset empties the batch for reuse, keeping its storage (and dropping the
// references to previously queued rows).
func (b *Batch) Reset() {
	clear(b.ops)
	b.ops = b.ops[:0]
}

// Commit applies the batch as one atomic maintenance commit: every queued
// update is validated up front — in order, counting the effect of earlier
// ops of the batch — and on any error (ErrUnknownRelation, ArityError,
// MultiplicityError) the engine is left completely unchanged; no partial
// prefix is ever applied, across relations as within one. On success the
// batch commits as a single maintenance pass: per touched relation the
// updates aggregate into one delta per view-tree leaf, every view tree is
// walked once per (batch, relation) on the engine's worker pool
// (Options.Workers), and the whole commit publishes one snapshot epoch — a
// concurrent Snapshot observes all of the batch or none of it.
//
// The observable result — the enumerated query output, N, and the
// maintenance invariants — is identical to applying the same updates in
// order with Apply; the amortized cost per row is what ApplyBatch provides,
// now across relations. Commit does not consume the batch; Reset it before
// building the next one.
func (e *Engine) Commit(b *Batch) error {
	if !e.built {
		return fmt.Errorf("ivmeps: Commit: %w (call Build first)", ErrNotBuilt)
	}
	if b == nil {
		return nil // like an empty batch: nothing to commit
	}
	if b.owner != e {
		return fmt.Errorf("ivmeps: Commit: batch was created by a different engine")
	}
	return wrapErr(e.e.CommitBatch(b.ops))
}
