package ivmeps

import (
	"errors"
	"fmt"
	"iter"
	"sync"

	"ivmeps/internal/core"
	"ivmeps/internal/tuple"
	"ivmeps/internal/watch"
)

// Watching: per-commit view-delta streaming. Engine.Watch returns a
// Watcher anchored at a snapshot of the current committed state; the
// watcher's event stream then carries the root-view delta of every
// subsequent commit, in commit (epoch) order with no gaps, so folding the
// deltas over the anchor reproduces the engine's state at every delivered
// epoch. Fan-out is non-blocking for the writer: each watcher owns a
// bounded buffer, and a watcher that falls more commits behind than its
// buffer holds is evicted with a WatcherLaggedError naming the exact
// epochs it missed — other watchers, and the writer, are unaffected.

// DefaultWatchBuffer is the event buffer used when WatchOptions.Buffer is
// non-positive: how many commits a watcher may fall behind the writer
// before it is evicted from the stream.
const DefaultWatchBuffer = 64

// WatchOptions configures Engine.Watch.
type WatchOptions struct {
	// Views restricts the stream to the named root views (see
	// Engine.Views). Nil means all views. Unknown names are rejected by
	// Watch. Filtering applies to event contents only — every commit still
	// occupies one buffer slot, so a filtered watcher must keep up with the
	// full commit rate.
	Views []string

	// Buffer is the per-watcher event-buffer capacity in commits;
	// non-positive means DefaultWatchBuffer. A watcher more than Buffer
	// commits behind the writer is evicted (WatcherLaggedError).
	Buffer int
}

// ViewDelta is the change of one root view in one commit: row Rows[i]
// changed multiplicity by Mults[i] (never zero). Rows within one ViewDelta
// are distinct.
type ViewDelta struct {
	View  string
	Rows  [][]int64
	Mults []int64
}

// Event is the root-view diff published by one commit: applying every
// delta to the state as of epoch Epoch−1 yields the state as of Epoch.
// Commits that changed none of the watcher's views still produce an Event
// with an empty Deltas, so delivered epochs are always consecutive.
type Event struct {
	Epoch  uint64
	Deltas []ViewDelta
}

// Watcher is one live subscription to the engine's commit stream: an
// anchor Snapshot plus every later commit's delta, in order. Events and
// Snapshot are for a single consumer goroutine; Close may be called from
// any goroutine, concurrently with an in-flight iteration.
type Watcher struct {
	sub    *watch.Sub
	filter map[string]bool

	mu          sync.Mutex
	anchor      *Snapshot
	anchorTaken bool

	// Per-yield conversion arenas, reused across events (Event contents
	// are valid until the next iteration step; copy to retain).
	evDeltas []ViewDelta
	rowBuf   [][]int64
}

// Watch subscribes to the engine's commit stream. The returned watcher is
// anchored at the current committed state: its Snapshot observes epoch E,
// and its Events deliver every commit with epoch > E — the anchor and the
// subscription are captured atomically, so the stream has no gap and no
// overlap with the snapshot. Watch before Build returns ErrNotBuilt.
//
// Watchers are independent: any number may be open, each with its own
// anchor, buffer, and view filter, and a slow watcher is evicted without
// affecting the others. While no watcher is open the commit path does no
// capture work at all.
func (e *Engine) Watch(opts WatchOptions) (*Watcher, error) {
	if !e.built {
		return nil, fmt.Errorf("ivmeps: Watch: %w (call Build first)", ErrNotBuilt)
	}
	var filter map[string]bool
	if opts.Views != nil {
		filter = make(map[string]bool, len(opts.Views))
		known := e.e.RootViews()
		for _, v := range opts.Views {
			ok := false
			for _, k := range known {
				if k == v {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("ivmeps: Watch: unknown view %q (Engine.Views lists the root views)", v)
			}
			filter[v] = true
		}
	}
	sub, snap, err := e.hub.Subscribe(opts.Buffer)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Watcher{sub: sub, filter: filter, anchor: &Snapshot{s: snap}}, nil
}

// Views returns the engine-assigned names of the root views — the View
// names carried by watch events and accepted by WatchOptions.Views and
// Snapshot.ViewRows, one per materialized view tree, in a fixed order.
// Empty before Build.
func (e *Engine) Views() []string { return e.e.RootViews() }

// Snapshot returns the watcher's anchor: the committed state immediately
// before the first event of the stream. The first call transfers ownership
// to the caller, who must Close it; if Snapshot is never called, the
// watcher's Close releases the anchor.
func (w *Watcher) Snapshot() *Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.anchorTaken = true
	return w.anchor
}

// Events iterates the watcher's commit stream in epoch order, blocking
// between commits. The first event's epoch is the anchor's epoch + 1, and
// epochs are consecutive from there. An event's Deltas, rows, and mults are
// valid only until the next iteration step — copy them to retain.
//
// The iteration ends when the watcher is closed (silently) or when the
// watcher is evicted for lagging: then exactly one final pair with a
// non-nil error — a WatcherLaggedError naming the missed epochs, after
// every buffered event has been delivered — is yielded first. Breaking out
// of the loop does not close the watcher; calling Events again resumes the
// stream where it stopped.
func (w *Watcher) Events() iter.Seq2[Event, error] {
	return func(yield func(Event, error) bool) {
		for {
			cd, err := w.sub.Next()
			if err != nil {
				if !errors.Is(err, watch.ErrClosed) {
					yield(Event{}, wrapErr(err))
				}
				return
			}
			ev := w.convert(cd)
			ok := yield(ev, nil)
			cd.Release()
			if !ok {
				return
			}
		}
	}
}

// convert reshapes a shared commit record into the public Event form,
// applying the view filter. The Deltas and row slices live in the
// watcher's reused arenas; the row storage itself aliases the record's
// (released only after the yield returns).
func (w *Watcher) convert(cd *core.CommitDelta) Event {
	deltas := w.evDeltas[:0]
	rows := w.rowBuf[:0]
	total := 0
	for i := range cd.Views {
		if w.filter == nil || w.filter[cd.Views[i].View] {
			total += len(cd.Views[i].Rows)
		}
	}
	if cap(rows) < total {
		rows = make([][]int64, 0, total)
	}
	for i := range cd.Views {
		vd := &cd.Views[i]
		if w.filter != nil && !w.filter[vd.View] {
			continue
		}
		start := len(rows)
		for _, t := range vd.Rows {
			rows = append(rows, []int64(t))
		}
		deltas = append(deltas, ViewDelta{
			View:  vd.View,
			Rows:  rows[start:len(rows):len(rows)],
			Mults: vd.Mults,
		})
	}
	w.evDeltas, w.rowBuf = deltas, rows
	return Event{Epoch: cd.Epoch, Deltas: deltas}
}

// Close ends the subscription: a blocked or future Events iteration
// returns, the watcher stops occupying writer-side resources, and — unless
// Snapshot transferred it — the anchor snapshot is released. Idempotent
// and safe from any goroutine.
func (w *Watcher) Close() {
	w.sub.Close()
	w.mu.Lock()
	taken := w.anchorTaken
	w.anchorTaken = true
	w.mu.Unlock()
	if !taken {
		w.anchor.Close()
	}
}

// ViewRows returns one root view's rows and multiplicities in the
// snapshot's committed state (see Engine.Views for the names). The
// returned slices are fresh copies owned by the caller. Folding watch
// deltas over the anchor's ViewRows reproduces ViewRows at every later
// epoch.
func (s *Snapshot) ViewRows(view string) (rows [][]int64, mults []int64, err error) {
	ok := s.s.ViewForEach(view, func(t tuple.Tuple, m int64) {
		row := make([]int64, len(t))
		copy(row, t)
		rows = append(rows, row)
		mults = append(mults, m)
	})
	if !ok {
		return nil, nil, fmt.Errorf("ivmeps: ViewRows: unknown view %q (Engine.Views lists the root views)", view)
	}
	return rows, mults, nil
}
