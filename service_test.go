package ivmeps_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"ivmeps"
	"ivmeps/internal/client"
	"ivmeps/internal/server"
)

// The loopback property suite: an engine served over HTTP on a loopback
// listener must be observationally identical to the same engine used
// in-process. Under concurrent commit traffic,
//
//   - every paginated read (client.Rows / client.All) returns exactly the
//     reference join result at the epoch it observed, and
//   - every remote watcher's fold — anchor state plus every event delta —
//     matches the local watcher's fold at every epoch, for full, filtered,
//     and close/reopen-resumed subscriptions.
//
// Run at Workers 1, 2, and 8 so -race sees the server's commit/read/watch
// interleavings over a parallel propagation engine.

// svcState is a folded per-view state: view → canonical row key → mult.
type svcState map[string]map[string]int64

// svcKey canonicalizes one row.
func svcKey(row []int64) string { return fmt.Sprint(row) }

// svcCanon canonicalizes one view's folded rows for comparison.
func svcCanon(m map[string]int64) string {
	lines := make([]string, 0, len(m))
	for k, v := range m {
		if v != 0 {
			lines = append(lines, fmt.Sprintf("%s=%d", k, v))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, ";")
}

// svcFold applies one event's deltas to a state, in place.
func svcFold(st svcState, ev ivmeps.Event) {
	for _, d := range ev.Deltas {
		vm := st[d.View]
		if vm == nil {
			vm = make(map[string]int64)
			st[d.View] = vm
		}
		for i := range d.Rows {
			k := svcKey(d.Rows[i])
			vm[k] += d.Mults[i]
			if vm[k] == 0 {
				delete(vm, k)
			}
		}
	}
}

// svcCanonAll snapshots a state's canonical form for the given views.
func svcCanonAll(st svcState, views []string) map[string]string {
	out := make(map[string]string, len(views))
	for _, v := range views {
		out[v] = svcCanon(st[v])
	}
	return out
}

// svcFoldRecord is one watcher's observation history: epoch → view →
// canonical state, plus which views it covers.
type svcFoldRecord struct {
	name   string
	views  []string
	byEp   map[uint64]map[string]string
	lastEp uint64
}

func TestServerLoopbackPropertyWorkers1(t *testing.T) { testServerLoopback(t, 1) }
func TestServerLoopbackPropertyWorkers2(t *testing.T) { testServerLoopback(t, 2) }
func TestServerLoopbackPropertyWorkers8(t *testing.T) { testServerLoopback(t, 8) }

func testServerLoopback(t *testing.T, workers int) {
	const (
		commits   = 60
		maxOps    = 16
		domain    = 8
		buildEp   = uint64(1)
		finalEp   = buildEp + commits // every commit is non-empty, so epochs are dense
		pageLimit = 5                 // small pages force multi-page reads
	)
	q := ivmeps.MustParseQuery("Q(A, C) = R(A, B), S(B, C)")
	eng, err := ivmeps.New(q, ivmeps.Options{Epsilon: 0.5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Build(); err != nil {
		t.Fatal(err)
	}
	views := eng.Views()
	srv := server.New(eng, server.Options{PageSize: pageLimit})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	c, err := client.New(hs.URL, client.Options{PageLimit: pageLimit})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var wg sync.WaitGroup

	// Local ground truth #1: the in-process watcher fold, per epoch.
	localRef := &svcFoldRecord{name: "local", views: views, byEp: make(map[uint64]map[string]string)}
	wg.Add(1)
	go func() {
		defer wg.Done()
		wat, err := eng.Watch(ivmeps.WatchOptions{})
		if err != nil {
			t.Errorf("local watch: %v", err)
			return
		}
		defer wat.Close()
		anchor := wat.Snapshot()
		st := make(svcState)
		for _, v := range views {
			rows, mults, err := anchor.ViewRows(v)
			if err != nil {
				t.Errorf("local anchor %s: %v", v, err)
				return
			}
			vm := make(map[string]int64, len(rows))
			for i := range rows {
				vm[svcKey(rows[i])] = mults[i]
			}
			st[v] = vm
		}
		localRef.byEp[anchor.Epoch()] = svcCanonAll(st, views)
		localRef.lastEp = anchor.Epoch()
		anchor.Close()
		for ev, err := range wat.Events() {
			if err != nil {
				t.Errorf("local watch fold: %v", err)
				return
			}
			svcFold(st, ev)
			localRef.byEp[ev.Epoch] = svcCanonAll(st, views)
			localRef.lastEp = ev.Epoch
			if ev.Epoch >= finalEp {
				return
			}
		}
	}()

	// Local ground truth #2: the reference join per epoch, maintained by
	// the committer below. resultAt[e] is the canonical Q result at epoch e.
	resultAt := make([]string, finalEp+1)
	resultAt[buildEp] = ""

	// Remote watcher folds, compared against localRef post-hoc. Watcher
	// goroutines fold independently; races with the committer are the point.
	var foldMu sync.Mutex
	var folds []*svcFoldRecord
	remoteWatcher := func(name string, watchViews []string, churnEvery int) {
		defer wg.Done()
		foldViews := watchViews
		if foldViews == nil {
			foldViews = views
		}
		rec := &svcFoldRecord{name: name, views: foldViews, byEp: make(map[uint64]map[string]string)}
		foldMu.Lock()
		folds = append(folds, rec)
		foldMu.Unlock()

		st := make(svcState)
		var lastEp uint64
		open := func(fromEpoch uint64) (*client.Watcher, bool) {
			w, err := c.Watch(ctx, client.WatchOptions{Views: watchViews, FromEpoch: fromEpoch})
			if err != nil {
				t.Errorf("%s: watch open: %v", name, err)
				return nil, false
			}
			if !w.Resumed() {
				// Fresh (or reset) anchor: replace the folded state.
				st = make(svcState)
				for _, v := range foldViews {
					rows, mults, ok := w.AnchorRows(v)
					if !ok {
						t.Errorf("%s: anchor missing view %s", name, v)
						w.Close()
						return nil, false
					}
					vm := make(map[string]int64, len(rows))
					for i := range rows {
						vm[svcKey(rows[i])] = mults[i]
					}
					st[v] = vm
				}
				lastEp = w.Epoch()
				rec.byEp[lastEp] = svcCanonAll(st, foldViews)
				rec.lastEp = lastEp
			} else if w.Epoch() != fromEpoch {
				t.Errorf("%s: resumed at epoch %d, asked for %d", name, w.Epoch(), fromEpoch)
			}
			return w, true
		}

		w, ok := open(0)
		if !ok {
			return
		}
		defer func() { w.Close() }()
		events := 0
		for lastEp < finalEp {
			advanced := false
			for ev, err := range w.Events() {
				if err != nil {
					t.Errorf("%s: events: %v", name, err)
					return
				}
				if ev.Epoch != lastEp+1 {
					t.Errorf("%s: epoch gap %d → %d", name, lastEp, ev.Epoch)
					return
				}
				svcFold(st, ev)
				lastEp = ev.Epoch
				rec.byEp[lastEp] = svcCanonAll(st, foldViews)
				rec.lastEp = lastEp
				advanced = true
				events++
				if lastEp >= finalEp {
					return
				}
				if churnEvery > 0 && events%churnEvery == 0 {
					break // close and resume from lastEp
				}
			}
			if !advanced && churnEvery == 0 {
				t.Errorf("%s: stream ended at epoch %d before %d", name, lastEp, finalEp)
				return
			}
			if churnEvery > 0 {
				w.Close()
				w, ok = open(lastEp)
				if !ok {
					return
				}
			}
		}
	}
	wg.Add(3)
	go remoteWatcher("remote-full", nil, 0)
	go remoteWatcher("remote-filtered", views[:1], 0)
	go remoteWatcher("remote-churn", nil, 13)

	// Concurrent paginated readers: each full read must be the reference
	// join at exactly the epoch it observed. Observations are verified
	// post-hoc (the committer records resultAt[e] after Commit returns, so
	// a racing reader can observe e first).
	type readObs struct {
		epoch uint64
		canon string
	}
	done := make(chan struct{})
	var obsMu sync.Mutex
	var observations []readObs
	reader := func(lazy bool) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			m := make(map[string]int64)
			if lazy {
				// All doesn't expose the epoch, but the client enforces
				// one epoch across its pages; exercising it concurrently
				// with commits is the point. Content is epoch-checked via
				// the Rows path in the other reader.
				seq, errf := c.All(ctx, "")
				for row, mult := range seq {
					m[svcKey(row)] += mult
				}
				if err := errf(); err != nil {
					t.Errorf("reader: All: %v", err)
					return
				}
				continue
			}
			rows, mults, epoch, err := c.Rows(ctx, "")
			if err != nil {
				t.Errorf("reader: Rows: %v", err)
				return
			}
			for i := range rows {
				m[svcKey(rows[i])] += mults[i]
			}
			obsMu.Lock()
			observations = append(observations, readObs{epoch, svcCanon(m)})
			obsMu.Unlock()
		}
	}
	wg.Add(2)
	go reader(false)
	go reader(true)

	// The committer: the single writer. Random valid traffic against the
	// shadow base relations; after each commit the reference join for the
	// published epoch is recorded.
	rng := rand.New(rand.NewSource(int64(workers) * 7919))
	shadow := map[string]map[[2]int64]int64{"R": {}, "S": {}}
	join := func() string {
		m := make(map[string]int64)
		for rt, rm := range shadow["R"] {
			for st, sm := range shadow["S"] {
				if rt[1] == st[0] {
					m[svcKey([]int64{rt[0], st[1]})] += rm * sm
				}
			}
		}
		return svcCanon(m)
	}
	b := c.NewBatch()
	for k := 0; k < commits; k++ {
		b.Reset()
		pending := map[string]map[[2]int64]int64{"R": {}, "S": {}}
		n := 1 + rng.Intn(maxOps)
		for i := 0; i < n; i++ {
			rel := "R"
			if rng.Intn(2) == 1 {
				rel = "S"
			}
			if rng.Float64() < 0.3 {
				// Delete one unit from a tuple that still has weight.
				var candidates [][2]int64
				for tup, m := range shadow[rel] {
					if m+pending[rel][tup] > 0 {
						candidates = append(candidates, tup)
					}
				}
				if len(candidates) > 0 {
					tup := candidates[rng.Intn(len(candidates))]
					pending[rel][tup]--
					b.Delete(rel, []int64{tup[0], tup[1]})
					continue
				}
			}
			mult := int64(1 + rng.Intn(2))
			tup := [2]int64{int64(rng.Intn(domain)), int64(rng.Intn(domain))}
			pending[rel][tup] += mult
			b.Apply(rel, []int64{tup[0], tup[1]}, mult)
		}
		epoch, err := c.Commit(ctx, b)
		if err != nil {
			t.Fatalf("commit %d: %v", k, err)
		}
		if want := buildEp + uint64(k) + 1; epoch != want {
			t.Fatalf("commit %d published epoch %d, want %d", k, epoch, want)
		}
		for rel, pm := range pending {
			for tup, d := range pm {
				shadow[rel][tup] += d
				if shadow[rel][tup] == 0 {
					delete(shadow[rel], tup)
				}
			}
		}
		resultAt[epoch] = join()
	}
	close(done)
	wg.Wait()

	// Post-hoc verification. Every read observation matches the reference
	// join at its epoch, bit-identically.
	if len(observations) == 0 {
		t.Fatal("readers made no observations")
	}
	for _, o := range observations {
		if o.epoch < buildEp || o.epoch > finalEp {
			t.Fatalf("read observed impossible epoch %d", o.epoch)
		}
		if o.canon != resultAt[o.epoch] {
			t.Fatalf("remote read at epoch %d diverges from the reference join:\n got %s\nwant %s",
				o.epoch, o.canon, resultAt[o.epoch])
		}
	}

	// Every remote fold matches the local fold at every epoch it covers.
	if localRef.lastEp != finalEp {
		t.Fatalf("local fold stopped at epoch %d, want %d", localRef.lastEp, finalEp)
	}
	for _, rec := range folds {
		if rec.lastEp != finalEp {
			t.Errorf("%s: fold stopped at epoch %d, want %d", rec.name, rec.lastEp, finalEp)
			continue
		}
		for ep, got := range rec.byEp {
			want := localRef.byEp[ep]
			if want == nil {
				t.Errorf("%s: folded epoch %d the local watcher never saw", rec.name, ep)
				continue
			}
			for _, v := range rec.views {
				if got[v] != want[v] {
					t.Errorf("%s: view %s at epoch %d diverges from the local fold:\n got %s\nwant %s",
						rec.name, v, ep, got[v], want[v])
				}
			}
		}
	}
}
