// Benchmarks regenerating the paper's figures and tables in testing.B form.
// Each benchmark corresponds to one artifact of the paper's presentation;
// the experiment IDs match internal/experiments and EXPERIMENTS.md. Run the
// full sweeps (with slope fits against the paper's exponents) via
//
//	go run ./cmd/hiqbench
//
// and the per-operation microbenchmarks here via
//
//	go test -bench=. -benchmem
package ivmeps_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"ivmeps"

	"ivmeps/internal/baseline"
	"ivmeps/internal/core"
	"ivmeps/internal/experiments"
	"ivmeps/internal/federation"
	"ivmeps/internal/naive"
	"ivmeps/internal/query"
	"ivmeps/internal/relation"
	"ivmeps/internal/tuple"
	"ivmeps/internal/viewtree"
	"ivmeps/internal/workload"
)

const benchN = 4000

func twoPathDB(n int) naive.Database {
	return workload.TwoPath(rand.New(rand.NewSource(1)), n, 1.15)
}

func mustIVM(b *testing.B, q *query.Query, eps float64, db naive.Database) *baseline.IVMEps {
	b.Helper()
	sys, err := baseline.NewIVMEps(q, eps)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Preprocess(db); err != nil {
		b.Fatal(err)
	}
	return sys
}

// replayStream applies b.N updates by cycling an insert-only stream:
// even passes insert the stream's tuples, odd passes delete them again, so
// the database stays bounded and deletes always have matching inserts.
func replayStream(b *testing.B, sys baseline.System, stream []workload.Update) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		u := stream[i%len(stream)]
		mult := u.Mult
		if (i/len(stream))%2 == 1 {
			mult = -mult
		}
		if err := sys.Update(u.Rel, u.Tuple, mult); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1StaticPreprocess measures the preprocessing stage of
// Figure 1 (left) / Theorem 2 at each ε: one op = one full preprocessing of
// an N≈2·benchN Zipf database (expected cost O(N^(1+ε)) for w=2).
func BenchmarkFig1StaticPreprocess(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	for _, eps := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			n := benchN
			if eps == 1 {
				n = benchN / 4
			}
			db := twoPathDB(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := baseline.NewIVMEpsStatic(q, eps)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Preprocess(db.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1DynamicUpdate measures the amortized single-tuple update of
// Figure 1 (left) / Theorem 4 at each ε: one op = one Update (expected
// amortized O(N^ε) for δ=1).
func BenchmarkFig1DynamicUpdate(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	for _, eps := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			db := workload.TwoPath(rng, benchN, 1.15)
			sys := mustIVM(b, q, eps, db.Clone())
			stream := workload.UpdateStream(rng, q, db, 4096, 0)
			b.ResetTimer()
			replayStream(b, sys, stream)
		})
	}
}

// BenchmarkUpdateSteadyState measures the allocation-sensitive inner loop of
// the update path: single-tuple updates in a steady state (no growth, no
// rebalancing pressure), on a q-hierarchical query whose per-update cost the
// paper bounds by O(1) and on the non-q-hierarchical two-path query. Run with
// -benchmem; the allocs/op column is the headline number.
func BenchmarkUpdateSteadyState(b *testing.B) {
	cases := []struct {
		name string
		q    string
		eps  float64
		gen  func(rng *rand.Rand) naive.Database
	}{
		{"q-hierarchical", "Q(A, B) = R(A, B), S(B)", 0.5,
			func(rng *rand.Rand) naive.Database { return workload.TwoPathUnary(rng, benchN, 1.1) }},
		{"two-path", "Q(A, C) = R(A, B), S(B, C)", 0.5,
			func(rng *rand.Rand) naive.Database { return workload.TwoPath(rng, benchN, 1.15) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			q := query.MustParse(c.q)
			rng := rand.New(rand.NewSource(31))
			db := c.gen(rng)
			sys := mustIVM(b, q, c.eps, db.Clone())
			stream := workload.UpdateStream(rng, q, db, 4096, 0)
			b.ReportAllocs()
			b.ResetTimer()
			replayStream(b, sys, stream)
		})
	}
}

// BenchmarkBatchVsSequential measures the batch-update amortization: one op
// = applying a 10k-row mixed insert/delete batch and then its inverse
// (keeping the database bounded), either row-by-row with Update or in one
// ApplyBatch pass. The batch variant walks each view tree once per batch
// instead of once per row.
func BenchmarkBatchVsSequential(b *testing.B) {
	const batchRows = 10000
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	makeBatch := func(rng *rand.Rand) ([]tuple.Tuple, []int64, []tuple.Tuple, []int64) {
		// 10k rows over 4k distinct fresh tuples: duplicates exercise the
		// per-leaf aggregation, and the distinct count stays small enough
		// relative to N that neither the batch nor its inverse crosses a
		// rebalancing threshold (the cost compared is pure maintenance).
		pool := make([]tuple.Tuple, 4000)
		for i := range pool {
			pool[i] = tuple.Tuple{1_000_000 + int64(i), rng.Int63n(400)}
		}
		rows := make([]tuple.Tuple, batchRows)
		mults := make([]int64, batchRows)
		inv := make([]tuple.Tuple, batchRows)
		invMults := make([]int64, batchRows)
		for i := range rows {
			rows[i] = pool[rng.Intn(len(pool))]
			mults[i] = 1
			inv[len(inv)-1-i] = rows[i]
			invMults[len(inv)-1-i] = -1
		}
		return rows, mults, inv, invMults
	}
	newEngine := func(b *testing.B, rng *rand.Rand) *core.Engine {
		db := workload.TwoPath(rng, benchN, 1.15)
		// Workers pinned to 1: this benchmark isolates the batching win over
		// row-by-row Update; worker scaling is BenchmarkParallelBatch's job.
		e, err := core.New(q, core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := core.Preprocess(e, db); err != nil {
			b.Fatal(err)
		}
		return e
	}
	// Both variants warm up outside the timer so allocs/op reflects the
	// steady state instead of b.N-dependent amortization of first-touch
	// growth (entry/index/map sizing on the first pass).
	b.Run("sequential", func(b *testing.B) {
		rng := rand.New(rand.NewSource(41))
		e := newEngine(b, rng)
		rows, mults, inv, invMults := makeBatch(rng)
		pass := func() {
			for j := range rows {
				if err := e.Update("R", rows[j], mults[j]); err != nil {
					b.Fatal(err)
				}
			}
			for j := range inv {
				if err := e.Update("R", inv[j], invMults[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		pass()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pass()
		}
	})
	b.Run("batch", func(b *testing.B) {
		rng := rand.New(rand.NewSource(41))
		e := newEngine(b, rng)
		rows, mults, inv, invMults := makeBatch(rng)
		pass := func() {
			if err := e.ApplyBatch("R", rows, mults); err != nil {
				b.Fatal(err)
			}
			if err := e.ApplyBatch("R", inv, invMults); err != nil {
				b.Fatal(err)
			}
		}
		pass()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pass()
		}
	})
}

// BenchmarkFig1Delay measures the enumeration delay of Figure 1 (left):
// one op = producing one distinct result tuple (expected O(N^(1−ε))).
func BenchmarkFig1Delay(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	for _, eps := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			n := benchN
			if eps == 1 {
				n = benchN / 4
			}
			sys := mustIVM(b, q, eps, twoPathDB(n))
			b.ResetTimer()
			produced := 0
			for produced < b.N {
				sys.Enumerate(func(t tuple.Tuple, m int64) bool {
					produced++
					return produced < b.N
				})
			}
		})
	}
}

// BenchmarkFig2Classify measures the query classification of Figure 2's
// landscape: one op = classifying the full query catalog (hierarchical,
// q-hierarchical, free-connex, widths).
func BenchmarkFig2Classify(b *testing.B) {
	catalog := []*query.Query{
		query.MustParse("Q(A, B) = R(A, B), S(B)"),
		query.MustParse("Q(A) = R(A, B), S(B)"),
		query.MustParse("Q(A, C) = R(A, B), S(B, C)"),
		query.MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)"),
		query.MustParse("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)"),
		query.MustParse("Q(A, C, F) = R(A, B, C), S(A, B, D), T(A, E, F), U(A, E, G)"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range catalog {
			_ = query.Classify(q)
		}
	}
}

// BenchmarkFig3OMvRound measures one OMv round (Appendix B.8 / Figure 3's
// Pareto point): n vector updates plus a full enumeration of
// Q(A) = R(A,B), S(B) at ε = 1/2.
func BenchmarkFig3OMvRound(b *testing.B) {
	const mn = 96
	inst := workload.NewOMvInstance(rand.New(rand.NewSource(3)), mn, 0.4)
	q := query.MustParse("Q(A) = R(A, B), S(B)")
	sys := mustIVM(b, q, 0.5, inst.Matrix)
	var prev []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec := inst.Rounds[i%len(inst.Rounds)]
		for _, v := range prev {
			if err := sys.Update("S", tuple.Tuple{v}, -1); err != nil {
				b.Fatal(err)
			}
		}
		for _, v := range vec {
			if err := sys.Update("S", tuple.Tuple{v}, 1); err != nil {
				b.Fatal(err)
			}
		}
		prev = vec
		sys.Enumerate(func(t tuple.Tuple, m int64) bool { return true })
	}
}

// BenchmarkFig4StaticRows measures the static landscape rows of Figure 4 as
// preprocessing ops at the ε that recovers each row.
func BenchmarkFig4StaticRows(b *testing.B) {
	rows := []struct {
		name string
		q    string
		eps  float64
		gen  func() naive.Database
	}{
		{"alpha-acyclic-eps0", "Q(A, C) = R(A, B), S(B, C)", 0,
			func() naive.Database { return twoPathDB(benchN) }},
		{"full-cq-eps1", "Q(A, C) = R(A, B), S(B, C)", 1,
			func() naive.Database { return twoPathDB(benchN / 4) }},
		{"free-connex", "Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)", 1,
			func() naive.Database { return workload.FreeConnex18(rand.New(rand.NewSource(4)), benchN) }},
		{"bounded-degree", "Q(A, C) = R(A, B), S(B, C)", 1,
			func() naive.Database { return workload.BoundedDegree(rand.New(rand.NewSource(5)), benchN, 8) }},
	}
	for _, row := range rows {
		b.Run(row.name, func(b *testing.B) {
			q := query.MustParse(row.q)
			db := row.gen()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := baseline.NewIVMEpsStatic(q, row.eps)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Preprocess(db.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5DynamicRows measures the dynamic landscape of Figure 5: one
// op = one single-tuple update, for our engine and for the prior-work
// baselines on the same non-q-hierarchical query.
func BenchmarkFig5DynamicRows(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	build := map[string]func() baseline.System{
		"ivm-eps-0.5": func() baseline.System { s, _ := baseline.NewIVMEps(q, 0.5); return s },
		"fo-ivm":      func() baseline.System { s, _ := baseline.NewFirstOrderIVM(q); return s },
		"plain-tree":  func() baseline.System { s, _ := baseline.NewPlainTree(q); return s },
		"recompute":   func() baseline.System { return baseline.NewRecompute(q) },
	}
	for _, name := range []string{"ivm-eps-0.5", "fo-ivm", "plain-tree", "recompute"} {
		b.Run(name+"/update", func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			db := workload.TwoPath(rng, benchN, 1.15)
			sys := build[name]()
			if err := sys.Preprocess(db.Clone()); err != nil {
				b.Fatal(err)
			}
			stream := workload.UpdateStream(rng, q, db, 4096, 0)
			b.ResetTimer()
			replayStream(b, sys, stream)
		})
	}
	// The q-hierarchical row: constant-time updates at ε=1.
	b.Run("q-hierarchical/update", func(b *testing.B) {
		qh := query.MustParse("Q(A, B) = R(A, B), S(B)")
		rng := rand.New(rand.NewSource(7))
		db := workload.TwoPathUnary(rng, benchN, 1.1)
		sys := mustIVM(b, qh, 1, db.Clone())
		stream := workload.UpdateStream(rng, qh, db, 4096, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			u := stream[i%len(stream)]
			mult := u.Mult
			if i >= len(stream) && i/len(stream)%2 == 1 {
				mult = -mult
			}
			if err := sys.Update(u.Rel, u.Tuple, mult); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExample18FreeConnex measures Example 18 (Figure 9): one op = one
// result tuple at constant delay after linear preprocessing.
func BenchmarkExample18FreeConnex(b *testing.B) {
	q := query.MustParse("Q(A, D, E) = R(A, B, C), S(A, B, D), T(A, E)")
	sys := mustIVM(b, q, 0.5, workload.FreeConnex18(rand.New(rand.NewSource(8)), benchN))
	b.ResetTimer()
	produced := 0
	for produced < b.N {
		sys.Enumerate(func(t tuple.Tuple, m int64) bool {
			produced++
			return produced < b.N
		})
	}
}

// BenchmarkExample19Update measures Example 19/24's maintenance (w=3, δ=3,
// three view trees, two indicator triples): one op = one update.
func BenchmarkExample19Update(b *testing.B) {
	q := query.MustParse("Q(C, D, E, F) = R(A, B, D), S(A, B, E), T(A, C, F), U(A, C, G)")
	rng := rand.New(rand.NewSource(9))
	db := workload.Star19(rng, benchN/2, 1.3)
	sys := mustIVM(b, q, 0.3, db.Clone())
	stream := workload.UpdateStream(rng, q, db, 4096, 0)
	b.ResetTimer()
	replayStream(b, sys, stream)
}

// BenchmarkExample28MatMul measures Example 28: one op = one full matrix
// product via preprocessing at ε = 1/2 (O(N^(3/2)) = O(n³)).
func BenchmarkExample28MatMul(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	db := workload.Matrix(rand.New(rand.NewSource(10)), 32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := baseline.NewIVMEpsStatic(q, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Preprocess(db.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample29Update measures Example 29's maintenance at ε = 1/2:
// one op = one update to R or S of Q(A) = R(A, B), S(B).
func BenchmarkExample29Update(b *testing.B) {
	q := query.MustParse("Q(A) = R(A, B), S(B)")
	rng := rand.New(rand.NewSource(11))
	db := workload.TwoPathUnary(rng, benchN, 1.2)
	sys := mustIVM(b, q, 0.5, db.Clone())
	stream := workload.UpdateStream(rng, q, db, 4096, 0)
	b.ResetTimer()
	replayStream(b, sys, stream)
}

// BenchmarkRebalancingChurn measures Section 6.2's amortization: one op =
// one update from a high-churn stream (50% deletes) whose cost includes any
// minor/major rebalancing it triggers.
func BenchmarkRebalancingChurn(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	rng := rand.New(rand.NewSource(12))
	db := workload.TwoPath(rng, benchN, 1.15)
	sys := mustIVM(b, q, 0.5, db.Clone())
	stream := workload.UpdateStream(rng, q, db, 8192, 0)
	b.ResetTimer()
	replayStream(b, sys, stream)
}

// BenchmarkExperimentQuick smoke-runs each experiment harness end to end
// (the artifact-generation path used by cmd/hiqbench).
func BenchmarkExperimentQuick(b *testing.B) {
	for _, id := range []string{"fig2", "ex28"} {
		exp := experiments.Find(id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = exp.Run(experiments.Config{Quick: true, Seed: 2020})
			}
		})
	}
}

// BenchmarkAblationAuxViews quantifies Figure 8's auxiliary views: one op =
// one single-tuple update, with and without the aux views (Lemma 47's
// constant-time sibling lookups vs sibling-subtree scans).
func BenchmarkAblationAuxViews(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	for _, noAux := range []bool{false, true} {
		name := "with-aux"
		if noAux {
			name = "no-aux"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(21))
			db := workload.TwoPath(rng, benchN, 1.15)
			e, err := core.New(q, core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, NoAuxViews: noAux})
			if err != nil {
				b.Fatal(err)
			}
			if err := core.Preprocess(e, db.Clone()); err != nil {
				b.Fatal(err)
			}
			stream := workload.UpdateStream(rng, q, db, 4096, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := stream[i%len(stream)]
				mult := u.Mult
				if (i/len(stream))%2 == 1 {
					mult = -mult
				}
				if err := e.Update(u.Rel, u.Tuple, mult); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPushdown quantifies the InsideOut aggregation pushdown
// behind Proposition 21: one op = one ε=0 preprocessing, with pushdown
// (linear) vs flat child joins (output-sized).
func BenchmarkAblationPushdown(b *testing.B) {
	q := query.MustParse("Q(A, C) = R(A, B), S(B, C)")
	for _, noPush := range []bool{false, true} {
		name := "pushdown"
		if noPush {
			name = "flat-join"
		}
		b.Run(name, func(b *testing.B) {
			db := twoPathDB(benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, err := core.New(q, core.Options{Mode: viewtree.Static, Epsilon: 0, NoPushdown: noPush})
				if err != nil {
					b.Fatal(err)
				}
				if err := core.Preprocess(e, db.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBatch measures the worker scaling of the parallel batch
// path: one op = applying a 10k-row batch and then its inverse to a query
// whose skew-aware forest spans five main view trees plus three indicator
// tree pairs, so the per-tree propagations of each phase actually fan out.
// Sub-benchmarks vary Options.Workers (auto = GOMAXPROCS-bounded); compare
// ns/op of workers=auto against workers=1 for the speedup, and allocs/op to
// confirm the pool adds no steady-state allocations. Single-core machines
// will show auto ≈ 1; the scaling story needs real cores.
func BenchmarkParallelBatch(b *testing.B) {
	const batchRows = 10000
	q := query.MustParse("Q(C, E) = R(A), S(A, B), T(A, B, C), U(A, D), V(A, D, E)")
	multiTreeDB := func(rng *rand.Rand, n int) naive.Database {
		db := naive.Database{}
		for _, a := range q.Atoms {
			r := relation.New(a.Rel, a.Vars)
			for i := 0; i < n; i++ {
				t := make(tuple.Tuple, len(a.Vars))
				t[0] = rng.Int63n(int64(n) / 8) // shared A: skewed enough to split
				for j := 1; j < len(t); j++ {
					t[j] = rng.Int63n(int64(n))
				}
				r.Set(t, 1)
			}
			db[a.Rel] = r
		}
		return db
	}
	for _, workers := range []int{1, 0, 2, 4} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=auto"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(61))
			e, err := core.New(q, core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			if err := core.Preprocess(e, multiTreeDB(rng, benchN)); err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			rows := make([]tuple.Tuple, batchRows)
			mults := make([]int64, batchRows)
			inv := make([]tuple.Tuple, batchRows)
			invMults := make([]int64, batchRows)
			pool := make([]tuple.Tuple, 4000)
			for i := range pool {
				pool[i] = tuple.Tuple{rng.Int63n(benchN / 8), rng.Int63n(400), 1_000_000 + int64(i)}
			}
			for i := range rows {
				rows[i] = pool[rng.Intn(len(pool))]
				mults[i] = 1
				inv[len(inv)-1-i] = rows[i]
				invMults[len(inv)-1-i] = -1
			}
			// Warm up outside the timer: spawn the pool, size the per-worker
			// scratch, and grow the aggregation maps to steady state, so
			// allocs/op reflects the steady state rather than b.N-dependent
			// amortization of the first batch. Group→worker assignment is
			// static and deterministic, so the warm-up passes size exactly
			// the scratch the measured passes use — allocs/op is exactly 0,
			// not merely usually 0, which is what lets the CI bench job gate
			// allocations instead of staying advisory.
			for i := 0; i < 2; i++ {
				if err := e.ApplyBatch("T", rows, mults); err != nil {
					b.Fatal(err)
				}
				if err := e.ApplyBatch("T", inv, invMults); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.ApplyBatch("T", rows, mults); err != nil {
					b.Fatal(err)
				}
				if err := e.ApplyBatch("T", inv, invMults); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiRelationBatch measures the multi-relation commit path on a
// mixed ingest stream that round-robins across three relations (S, T, V of
// the five-relation multi-tree query) — the relation-switch-per-op worst
// case for the commit's relation resolution. One op here is one queued
// single-tuple update; each iteration commits a 9000-op batch and its
// inverse (keeping the database bounded), as one CommitBatch each. Compare
// against BenchmarkBatchVsSequential/sequential for the per-op win over
// row-by-row Update, and across the workers= variants for the pool
// scaling; allocs/op is pinned at 0 by the CI bench gate.
func BenchmarkMultiRelationBatch(b *testing.B) {
	const opsPerRel = 3000
	q := query.MustParse("Q(C, E) = R(A), S(A, B), T(A, B, C), U(A, D), V(A, D, E)")
	multiTreeDB := func(rng *rand.Rand, n int) naive.Database {
		db := naive.Database{}
		for _, a := range q.Atoms {
			r := relation.New(a.Rel, a.Vars)
			for i := 0; i < n; i++ {
				t := make(tuple.Tuple, len(a.Vars))
				t[0] = rng.Int63n(int64(n) / 8) // shared A: skewed enough to split
				for j := 1; j < len(t); j++ {
					t[j] = rng.Int63n(int64(n))
				}
				r.Set(t, 1)
			}
			db[a.Rel] = r
		}
		return db
	}
	for _, workers := range []int{1, 0, 2, 4} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=auto"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(83))
			e, err := core.New(q, core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			if err := core.Preprocess(e, multiTreeDB(rng, benchN)); err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			// Fresh-tuple pools per relation, interleaved S,T,V per op so
			// every op switches relations; the inverse batch reverses the
			// stream with negated multiplicities.
			sPool := make([]tuple.Tuple, 2000)
			tPool := make([]tuple.Tuple, 2000)
			vPool := make([]tuple.Tuple, 2000)
			for i := range sPool {
				a := rng.Int63n(benchN / 8)
				sPool[i] = tuple.Tuple{a, 1_000_000 + int64(i)}
				tPool[i] = tuple.Tuple{a, rng.Int63n(benchN), 2_000_000 + int64(i)}
				vPool[i] = tuple.Tuple{a, rng.Int63n(benchN), 3_000_000 + int64(i)}
			}
			ops := make([]core.BatchOp, 0, 3*opsPerRel)
			for i := 0; i < opsPerRel; i++ {
				ops = append(ops,
					core.BatchOp{Rel: "S", Row: sPool[rng.Intn(len(sPool))], Mult: 1},
					core.BatchOp{Rel: "T", Row: tPool[rng.Intn(len(tPool))], Mult: 1},
					core.BatchOp{Rel: "V", Row: vPool[rng.Intn(len(vPool))], Mult: 1},
				)
			}
			inv := make([]core.BatchOp, len(ops))
			for i, op := range ops {
				inv[len(inv)-1-i] = core.BatchOp{Rel: op.Rel, Row: op.Row, Mult: -1}
			}
			// Warm up outside the timer (pool spawn, scratch sizing); the
			// static group→worker assignment makes the measured steady state
			// deterministically allocation-free.
			for i := 0; i < 2; i++ {
				if err := e.CommitBatch(ops); err != nil {
					b.Fatal(err)
				}
				if err := e.CommitBatch(inv); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.CommitBatch(ops); err != nil {
					b.Fatal(err)
				}
				if err := e.CommitBatch(inv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedCommit measures the federated multi-relation commit path
// on the same mixed three-relation ingest stream as
// BenchmarkMultiRelationBatch: each iteration commits a 9000-op batch and
// its inverse through a K-shard federation (scatter, per-shard two-phase
// prepare/apply, federation epoch). K=1 isolates the federation overhead
// over a single engine's CommitBatch — the scatter pass and one extra
// indirection — and is held within 10% of
// BenchmarkMultiRelationBatch/workers=1 by the CI bench tolerance; K>1
// shows the cross-shard path (on a multi-core host the prepared shards
// apply in parallel). allocs/op is pinned at 0 by the CI bench gate.
func BenchmarkShardedCommit(b *testing.B) {
	const opsPerRel = 3000
	q := query.MustParse("Q(C, E) = R(A), S(A, B), T(A, B, C), U(A, D), V(A, D, E)")
	multiTreeDB := func(rng *rand.Rand, n int) naive.Database {
		db := naive.Database{}
		for _, a := range q.Atoms {
			r := relation.New(a.Rel, a.Vars)
			for i := 0; i < n; i++ {
				t := make(tuple.Tuple, len(a.Vars))
				t[0] = rng.Int63n(int64(n) / 8) // shared A: skewed enough to split
				for j := 1; j < len(t); j++ {
					t[j] = rng.Int63n(int64(n))
				}
				r.Set(t, 1)
			}
			db[a.Rel] = r
		}
		return db
	}
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(83))
			f, err := federation.New(q, federation.Options{
				Shards: k,
				Engine: core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			if err := f.Preprocess(multiTreeDB(rng, benchN)); err != nil {
				b.Fatal(err)
			}
			// The same interleaved S,T,V stream as the unsharded benchmark:
			// every op switches relations, the worst case for relation
			// resolution in the scatter phase.
			sPool := make([]tuple.Tuple, 2000)
			tPool := make([]tuple.Tuple, 2000)
			vPool := make([]tuple.Tuple, 2000)
			for i := range sPool {
				a := rng.Int63n(benchN / 8)
				sPool[i] = tuple.Tuple{a, 1_000_000 + int64(i)}
				tPool[i] = tuple.Tuple{a, rng.Int63n(benchN), 2_000_000 + int64(i)}
				vPool[i] = tuple.Tuple{a, rng.Int63n(benchN), 3_000_000 + int64(i)}
			}
			ops := make([]core.BatchOp, 0, 3*opsPerRel)
			for i := 0; i < opsPerRel; i++ {
				ops = append(ops,
					core.BatchOp{Rel: "S", Row: sPool[rng.Intn(len(sPool))], Mult: 1},
					core.BatchOp{Rel: "T", Row: tPool[rng.Intn(len(tPool))], Mult: 1},
					core.BatchOp{Rel: "V", Row: vPool[rng.Intn(len(vPool))], Mult: 1},
				)
			}
			inv := make([]core.BatchOp, len(ops))
			for i, op := range ops {
				inv[len(inv)-1-i] = core.BatchOp{Rel: op.Rel, Row: op.Row, Mult: -1}
			}
			// Warm up outside the timer: spawn the apply runners, size the
			// pooled sub-batches and every shard's scratch to steady state.
			for i := 0; i < 2; i++ {
				if err := f.Commit(ops); err != nil {
					b.Fatal(err)
				}
				if err := f.Commit(inv); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Commit(ops); err != nil {
					b.Fatal(err)
				}
				if err := f.Commit(inv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedEnumerate measures the federated gather: one op is one
// full enumeration of the result across K shard snapshots. gather=concat
// streams a free-shard-key query's shards back to back (no merge state);
// gather=aggregate merges a bound-shard-key query's multiplicities per
// distinct tuple before yielding.
func BenchmarkShardedEnumerate(b *testing.B) {
	cases := []struct {
		name string
		q    string
	}{
		{"gather=concat", "Q(A, B, C) = R(A, B), S(A, C)"},
		{"gather=aggregate", "Q(B, C) = R(A, B), S(A, C)"},
	}
	for _, c := range cases {
		q := query.MustParse(c.q)
		for _, k := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/K=%d", c.name, k), func(b *testing.B) {
				rng := rand.New(rand.NewSource(29))
				f, err := federation.New(q, federation.Options{
					Shards: k,
					Engine: core.Options{Mode: viewtree.Dynamic, Epsilon: 0.5, Workers: 1},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer f.Close()
				db := naive.Database{}
				for _, a := range q.Atoms {
					if _, ok := db[a.Rel]; ok {
						continue
					}
					r := relation.New(a.Rel, a.Vars)
					for i := 0; i < benchN; i++ {
						t := make(tuple.Tuple, len(a.Vars))
						t[0] = rng.Int63n(int64(benchN) / 8)
						for j := 1; j < len(t); j++ {
							t[j] = rng.Int63n(int64(benchN))
						}
						r.Set(t, 1)
					}
					db[a.Rel] = r
				}
				if err := f.Preprocess(db); err != nil {
					b.Fatal(err)
				}
				s := f.Snapshot()
				defer s.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					s.Enumerate(func(t tuple.Tuple, m int64) bool { n++; return true })
					if n == 0 {
						b.Fatal("empty result")
					}
				}
			})
		}
	}
}

// BenchmarkWatchFanout measures what watch fan-out adds to the steady-state
// commit path, on the same warmed Reset/refill/Commit cycle as the other
// commit benchmarks (an insert batch then its inverse, 16 rows per relation
// each). subs=0 is the acceptance baseline: a watcher existed and was
// closed, so capture is disarmed and the commit path must be back to its
// zero-overhead state — allocs/op is pinned at 0 by the CI bench gate. For
// subs>0 every consumer runs in lockstep with the committer (one ack per
// delivered event before the next commit), so the in-flight record count,
// the freelist behavior, and therefore allocs/op are deterministic rather
// than scheduling-dependent: the per-commit record and every conversion
// arena are reused, and the fan-out itself is allocation-free.
func BenchmarkWatchFanout(b *testing.B) {
	pub := ivmeps.MustParseQuery("Q(A, C) = R(A, B), S(B, C)")
	for _, subs := range []int{0, 1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			e, err := ivmeps.New(pub, ivmeps.Options{Epsilon: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			rng := rand.New(rand.NewSource(53))
			for i := 0; i < benchN; i++ {
				if err := e.Load("R", []int64{rng.Int63n(benchN), rng.Int63n(64)}); err != nil {
					b.Fatal(err)
				}
				if err := e.Load("S", []int64{rng.Int63n(64), rng.Int63n(benchN)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Build(); err != nil {
				b.Fatal(err)
			}

			var wg sync.WaitGroup
			acks := make([]chan struct{}, subs)
			watchers := make([]*ivmeps.Watcher, subs)
			for i := range watchers {
				w, err := e.Watch(ivmeps.WatchOptions{Buffer: 8})
				if err != nil {
					b.Fatal(err)
				}
				w.Snapshot().Close() // no live snapshot during the measured loop
				watchers[i] = w
				acks[i] = make(chan struct{}, 1)
				wg.Add(1)
				go func(w *ivmeps.Watcher, ack chan<- struct{}) {
					defer wg.Done()
					for _, err := range w.Events() {
						if err != nil {
							b.Error(err)
							return
						}
						ack <- struct{}{}
					}
				}(w, acks[i])
			}
			if subs == 0 {
				// The baseline case still arms and disarms capture once, so
				// it measures the true "watchers came and went" state.
				w, err := e.Watch(ivmeps.WatchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				w.Close()
			}

			const rowsPerRel = 16
			var rRows, sRows [][]int64
			for i := int64(0); i < rowsPerRel; i++ {
				rRows = append(rRows, []int64{benchN + i, i % 4})
				sRows = append(sRows, []int64{i % 4, 2*benchN + i})
			}
			batch := e.NewBatch()
			fill := func(mult int64) {
				batch.Reset()
				for i := range rRows {
					batch.Apply("R", rRows[i], mult)
					batch.Apply("S", sRows[i], mult)
				}
			}
			commit := func() {
				if err := e.Commit(batch); err != nil {
					b.Fatal(err)
				}
				for i := range acks {
					<-acks[i]
				}
			}
			cycle := func() {
				fill(1)
				commit()
				fill(-1)
				commit()
			}
			for i := 0; i < 3; i++ {
				cycle()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle()
			}
			b.StopTimer()
			for _, w := range watchers {
				w.Close()
			}
			wg.Wait()
		})
	}
}

// BenchmarkCommitWithWAL measures what the write-ahead log adds to the
// steady-state commit path at each fsync policy, on the same warmed
// Reset/refill/Commit cycle as the in-memory benchmarks: an insert batch
// then its inverse, 16 rows per relation each. sync=none is the
// no-durability baseline (the hook is nil and the commit path pays one
// nil-check); off/batched/always map to the SyncMode values. allocs/op is
// pinned at 0 for every mode by the CI bench gate — the record encoder,
// the op re-framing, and the segment writer all run from pooled buffers.
// SegmentBytes is set high enough that rotation never fires inside the
// measured loop; ns/op for sync=always is dominated by fsync latency and
// is advisory only.
func BenchmarkCommitWithWAL(b *testing.B) {
	pub := ivmeps.MustParseQuery("Q(A, C) = R(A, B), S(B, C)")
	for _, mode := range []string{"none", "off", "batched", "always"} {
		b.Run("sync="+mode, func(b *testing.B) {
			opts := ivmeps.Options{Epsilon: 0.5}
			if mode != "none" {
				sm := map[string]ivmeps.SyncMode{
					"off": ivmeps.SyncOff, "batched": ivmeps.SyncBatched, "always": ivmeps.SyncAlways,
				}[mode]
				opts.Durability = ivmeps.Durability{
					Dir: filepath.Join(b.TempDir(), "log"), Sync: sm, SegmentBytes: 1 << 30,
				}
			}
			e, err := ivmeps.New(pub, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			rng := rand.New(rand.NewSource(29))
			for i := 0; i < benchN; i++ {
				if err := e.Load("R", []int64{rng.Int63n(benchN), rng.Int63n(64)}); err != nil {
					b.Fatal(err)
				}
				if err := e.Load("S", []int64{rng.Int63n(64), rng.Int63n(benchN)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := e.Build(); err != nil {
				b.Fatal(err)
			}
			const rowsPerRel = 16
			var rRows, sRows [][]int64
			for i := int64(0); i < rowsPerRel; i++ {
				rRows = append(rRows, []int64{benchN + i, i % 4})
				sRows = append(sRows, []int64{i % 4, 2*benchN + i})
			}
			batch := e.NewBatch()
			fill := func(mult int64) {
				batch.Reset()
				for i := range rRows {
					batch.Apply("R", rRows[i], mult)
					batch.Apply("S", sRows[i], mult)
				}
			}
			cycle := func() {
				fill(1)
				if err := e.Commit(batch); err != nil {
					b.Fatal(err)
				}
				fill(-1)
				if err := e.Commit(batch); err != nil {
					b.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				cycle()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle()
			}
		})
	}
}
