package ivmeps

import "ivmeps/internal/wal"

// SetDurabilityFS injects a file-operation implementation into a
// Durability configuration, for fault-injection tests
// (internal/wal/faultfs). Test-only: the field is unexported so real
// deployments always run on the real filesystem.
func SetDurabilityFS(d *Durability, fs wal.VFS) { d.fs = fs }
