package ivmeps

import (
	"errors"
	"fmt"

	"ivmeps/internal/core"
	"ivmeps/internal/federation"
	"ivmeps/internal/relation"
	"ivmeps/internal/wal"
	"ivmeps/internal/watch"
)

// Every data-validation rejection of the mutation and snapshot paths is
// programmable: it is either one of the sentinel values below (match with
// errors.Is — the values may arrive wrapped with call-site context) or one
// of the structured types ArityError, MultiplicityError, and ShardError
// (match with errors.As); none of them requires matching on error strings. Caller-side
// lifecycle mistakes that no program should branch on — Load after Build,
// Build called twice, a non-positive initial multiplicity, mismatched
// rows/mults lengths, committing another engine's Batch — remain plain
// descriptive errors.
var (
	// ErrNotBuilt is returned by mutation and snapshot entry points invoked
	// before Build, and is the value the enumeration conveniences
	// (Enumerate, Rows, Count, All) panic with in the same situation — the
	// package's one panicking misuse; see the package documentation.
	ErrNotBuilt = core.ErrNotBuilt

	// ErrUnknownRelation is returned when an update or load names a
	// relation that does not occur in the engine's query.
	ErrUnknownRelation = core.ErrUnknownRelation

	// ErrStatic is returned when an update reaches an engine built with
	// Options.Static, which rejects all post-Build maintenance.
	ErrStatic = core.ErrStatic
)

// ArityError reports a row whose length does not match the schema of the
// relation it was applied to.
type ArityError struct {
	Relation string
	Row      []int64
	Schema   []string // the relation's variable names
}

// Error formats the arity mismatch.
func (e *ArityError) Error() string {
	return fmt.Sprintf("ivmeps: relation %s: row %v has arity %d, schema %v has arity %d",
		e.Relation, e.Row, len(e.Row), e.Schema, len(e.Schema))
}

// MultiplicityError reports a delete that would drive a row's multiplicity
// below zero. Have is the multiplicity available when the update was
// attempted — for a batch, the stored multiplicity plus the net effect of
// the preceding ops of the same batch — and Delta the attempted change.
type MultiplicityError struct {
	Relation string
	Row      []int64
	Have     int64
	Delta    int64
}

// Error formats the rejected delete.
func (e *MultiplicityError) Error() string {
	return fmt.Sprintf("ivmeps: relation %s: delete of %v with multiplicity %d exceeds available multiplicity %d",
		e.Relation, e.Row, -e.Delta, e.Have)
}

// ShardError reports a validation failure detected by one shard of a
// Sharded engine's federated commit, identifying the shard. It wraps the
// underlying error — typically a MultiplicityError for a delete the owning
// shard rejected — so errors.Is and errors.As reach through it; match the
// shard attribution itself with errors.As:
//
//	var se *ivmeps.ShardError
//	if errors.As(err, &se) { ... se.Shard ...
//
// Failures detected before any shard is involved — an unknown relation or
// an arity mismatch, caught while scattering the batch — carry no shard
// attribution and are returned without a ShardError wrapper, exactly as an
// unsharded engine returns them.
type ShardError struct {
	Shard int
	Err   error
}

// Error formats the shard-attributed failure.
func (e *ShardError) Error() string {
	return fmt.Sprintf("ivmeps: shard %d: %v", e.Shard, e.Err)
}

// Unwrap exposes the shard's error to errors.Is / errors.As.
func (e *ShardError) Unwrap() error { return e.Err }

// CorruptLogError reports write-ahead log or checkpoint data that is
// present but wrong — a checksum mismatch, a malformed record, an epoch
// discontinuity between checkpoint and log tail. It is NOT returned for the
// one damage class a crash legitimately produces, a torn final record,
// which Open truncates silently; a CorruptLogError means the directory
// cannot be trusted to reproduce a committed state, and recovery refuses to
// guess. Match it with errors.As:
//
//	var cle *ivmeps.CorruptLogError
//	if errors.As(err, &cle) { ... cle.Path ...
type CorruptLogError struct {
	// Path is the offending file (or the log directory when the violation
	// spans files).
	Path string
	// Offset is the byte offset of the offending frame within Path, when
	// the violation is tied to one.
	Offset int64
	// Reason describes the violation.
	Reason string
}

// Error formats the corruption report.
func (e *CorruptLogError) Error() string {
	if e.Offset == 0 {
		return fmt.Sprintf("ivmeps: corrupt log: %s: %s", e.Path, e.Reason)
	}
	return fmt.Sprintf("ivmeps: corrupt log: %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// LogWedgedError reports an engine whose write-ahead log has wedged: an
// append, flush, fsync, or segment rotation failed, so the on-disk tail of
// the log is unknowable (a failed fsync in particular may or may not have
// persisted anything, and retrying cannot find out — so it is never
// retried). The engine degrades to read-only: every further mutation —
// Insert, Delete, Apply, ApplyBatch, Commit — returns this same error with
// the in-memory state exactly as it was before the failed commit, while
// Snapshot, All, Rows, Count, and Enumerate keep serving the last committed
// state. The failed commit itself was not applied; whether its record
// reached stable storage is uncertain, and recovery resolves that honestly:
// reopen the directory with Open, which replays exactly the records that
// made it to disk. Match it with errors.As:
//
//	var lwe *ivmeps.LogWedgedError
//	if errors.As(err, &lwe) { ... reopen via ivmeps.Open ...
type LogWedgedError struct {
	// Op names the I/O operation that failed first: "append", "flush",
	// "sync", or "rotate".
	Op string
	// Err is the original I/O error from that operation.
	Err error
}

// Error formats the wedge report.
func (e *LogWedgedError) Error() string {
	return fmt.Sprintf("ivmeps: write-ahead log wedged by %s failure: %v (engine is read-only; recover by reopening with Open)", e.Op, e.Err)
}

// Unwrap exposes the original I/O error to errors.Is / errors.As.
func (e *LogWedgedError) Unwrap() error { return e.Err }

// ErrWatcherLagged classifies the eviction of a watcher that fell more
// commits behind the writer than its buffer holds. It never arrives bare:
// the stream's final error is a *WatcherLaggedError carrying the exact
// missed epoch range, which errors.Is matches against this sentinel.
var ErrWatcherLagged = errors.New("ivmeps: watcher lagged behind the commit rate and was evicted")

// WatcherLaggedError is the final error of an evicted watcher's event
// stream: the commits with epochs From through To (inclusive) were dropped.
// Everything before From was delivered in order; nothing after To will be.
// The watcher itself is finished — resynchronize by opening a new Watch,
// whose anchor snapshot reflects everything that was missed. Match the
// class with errors.Is(err, ErrWatcherLagged), the range with errors.As:
//
//	var wle *ivmeps.WatcherLaggedError
//	if errors.As(err, &wle) { ... wle.From, wle.To ...
type WatcherLaggedError struct {
	From, To uint64
}

// Error formats the eviction report.
func (e *WatcherLaggedError) Error() string {
	return fmt.Sprintf("ivmeps: watcher lagged: missed commits %d..%d (buffer full; re-anchor with a new Watch)", e.From, e.To)
}

// Is matches the ErrWatcherLagged sentinel class.
func (e *WatcherLaggedError) Is(target error) bool { return target == ErrWatcherLagged }

// wrapErr maps the engine's internal structured errors onto the public
// ArityError / MultiplicityError / ShardError / CorruptLogError /
// LogWedgedError types. Sentinels pass through untouched — they are shared
// by value with the internal layers, so errors.Is matches without
// translation — as does anything else.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	var se *federation.ShardError
	if errors.As(err, &se) {
		return &ShardError{Shard: se.Shard, Err: wrapErr(se.Err)}
	}
	var we *wal.WedgedError
	if errors.As(err, &we) {
		return &LogWedgedError{Op: we.Op, Err: we.Err}
	}
	var ce *wal.CorruptError
	if errors.As(err, &ce) {
		return &CorruptLogError{Path: ce.Path, Offset: ce.Offset, Reason: ce.Reason}
	}
	var ae *relation.ArityError
	if errors.As(err, &ae) {
		schema := make([]string, len(ae.Schema))
		for i, v := range ae.Schema {
			schema[i] = string(v)
		}
		return &ArityError{Relation: ae.Relation, Row: ae.Tuple, Schema: schema}
	}
	var me *relation.MultiplicityError
	if errors.As(err, &me) {
		return &MultiplicityError{Relation: me.Relation, Row: me.Tuple, Have: me.Have, Delta: me.Delta}
	}
	var le *watch.LaggedError
	if errors.As(err, &le) {
		return &WatcherLaggedError{From: le.From, To: le.To}
	}
	return err
}
