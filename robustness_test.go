package ivmeps_test

// Satellite robustness tests riding with the fault-injection work: Close
// idempotency (including on wedged engines), Open error paths not leaking
// worker-pool goroutines, stale checkpoint temporaries, and checkpoint
// rename failures being survivable.

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"ivmeps"
	"ivmeps/internal/wal/faultfs"
)

// TestEngineCloseIdempotent double-closes engines in every configuration:
// pure in-memory, durable, and recovered. Close must return nil every
// time.
func TestEngineCloseIdempotent(t *testing.T) {
	q := durParse(t)

	mem, err := ivmeps.New(q, ivmeps.Options{Epsilon: 0.5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Build(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "log")
	run := runFaultWorkload(t, dir, 2, nil)
	if run.wedged || !run.buildOK {
		t.Fatal("workload did not complete")
	}
	// runFaultWorkload already closed the engine once; a recovered engine
	// gets the double-close treatment.
	r, err := ivmeps.Open(q, ivmeps.Options{
		Epsilon: 0.5, Workers: 2,
		Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways, SegmentBytes: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("first Close of recovered engine: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close of recovered engine: %v", err)
	}
}

// TestEngineCloseWedged wedges a durable engine and closes it twice: both
// closes must return nil — the failure was already reported to the commit
// that latched the wedge, and Close must not write (let alone fsync) a
// log whose on-disk state is unknowable.
func TestEngineCloseWedged(t *testing.T) {
	q := durParse(t)
	ffs := faultfs.New(nil)
	opts := ivmeps.Options{
		Epsilon: 0.5, Workers: 2,
		Durability: ivmeps.Durability{Dir: filepath.Join(t.TempDir(), "log"), Sync: ivmeps.SyncAlways},
	}
	ivmeps.SetDurabilityFS(&opts.Durability, ffs)
	e, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadWeighted("R", []int64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(faultfs.FileSync, 1)
	err = e.Insert("S", []int64{1, 2})
	var lwe *ivmeps.LogWedgedError
	if !errors.As(err, &lwe) {
		t.Fatalf("Insert with failing fsync = %v, want LogWedgedError", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close on wedged engine = %v, want nil", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close on wedged engine = %v, want nil", err)
	}
}

// TestOpenErrorPathsNoLeak fails Open late — after Build has run and the
// replay has committed batches large enough to start the parallel worker
// pool — and checks the half-built engine is torn down: goroutine counts
// must not grow across repeated failed Opens.
func TestOpenErrorPathsNoLeak(t *testing.T) {
	q := durParse(t)
	dir := filepath.Join(t.TempDir(), "log")
	opts := ivmeps.Options{
		Epsilon: 0.5, Workers: 8,
		// Small segments: each large batch lands in its own segment, so the
		// replay commits work BEFORE it reads the final segment — the point
		// where the fault will fire.
		Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways, SegmentBytes: 256},
	}
	e, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.LoadWeighted("R", []int64{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	// Batches well above the parallel-propagation row threshold, spread
	// over both relations so the replay has multiple delta groups.
	for c := 0; c < 4; c++ {
		b := e.NewBatch()
		for i := 0; i < 64; i++ {
			b.Insert("R", []int64{int64(100*c + i), int64(i % 5)})
			b.Insert("S", []int64{int64(i % 5), int64(1000*c + i)})
		}
		if err := e.Commit(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	openOpts := func(fs *faultfs.FS) ivmeps.Options {
		o := opts
		if fs != nil {
			ivmeps.SetDurabilityFS(&o.Durability, fs)
		}
		return o
	}

	// Counting run — and self-validation: while the recovered engine is
	// alive its worker pool must be running, otherwise the replay was too
	// small to exercise the leak at all.
	runtime.GC()
	// GC off for the measurement: a collection would run the engines'
	// AddCleanup safety net, close leaked pools, and hide a missing Close.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	before := runtime.NumGoroutine()
	counter := faultfs.New(nil)
	r, err := ivmeps.Open(q, openOpts(counter))
	if err != nil {
		t.Fatal(err)
	}
	during := runtime.NumGoroutine()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// The pool size is capped by the query's tree count (nWorkers-1
	// helpers), so even Workers=8 yields a few helpers here — two extra
	// goroutines is proof the pool is live.
	if during < before+2 {
		t.Fatalf("replay did not start the worker pool (%d goroutines before, %d during); leak test would be vacuous", before, during)
	}
	reads := counter.Counts()[faultfs.ReadFile]
	if reads < 3 {
		t.Fatalf("recovery performed %d file reads, need several segments", reads)
	}

	const attempts = 20
	for i := 0; i < attempts; i++ {
		ffs := faultfs.New(nil)
		ffs.Inject(faultfs.ReadFile, reads)
		if _, err := ivmeps.Open(q, openOpts(ffs)); err == nil {
			t.Fatal("Open with failing segment read succeeded")
		}
	}
	// Give just-closed pools a moment to wind down, without forcing a GC
	// (a GC would run the engine cleanups and hide a missing Close).
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before+8 {
		t.Fatalf("failed Opens leaked goroutines: %d before, %d after %d attempts", before, after, attempts)
	}
}

// TestOpenRemovesStaleCheckpointTmp plants crash-leftover temporary files
// in a valid log directory: Open must ignore and remove them, recovering
// the exact committed state.
func TestOpenRemovesStaleCheckpointTmp(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log")
	clean := runFaultWorkload(t, dir, 1, nil)
	if clean.wedged || !clean.buildOK {
		t.Fatal("workload did not complete")
	}
	stale := []string{
		filepath.Join(dir, "ckpt-00000000000000000099.ckpt.tmp"),
		filepath.Join(dir, "stray.tmp"),
	}
	for _, p := range stale {
		if err := os.WriteFile(p, []byte("half-written checkpoint"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	q := durParse(t)
	r, err := ivmeps.Open(q, ivmeps.Options{
		Epsilon: 0.5, Workers: 1,
		Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways, SegmentBytes: 128},
	})
	if err != nil {
		t.Fatalf("Open with stale temporaries: %v", err)
	}
	defer r.Close()
	got, epoch := durState(t, r)
	if epoch != clean.lastEpoch || !sameState(got, clean.states[clean.lastEpoch]) {
		t.Fatalf("recovered epoch %d, want %d", epoch, clean.lastEpoch)
	}
	for _, p := range stale {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale temporary %s survived Open", p)
		}
	}
}

// TestCheckpointRenameFailureSurvivable fails the rename that publishes a
// checkpoint: Checkpoint must return the error WITHOUT wedging the engine
// (the log stream is untouched), leave no temporary and no half-visible
// checkpoint behind, and a retry must succeed.
func TestCheckpointRenameFailureSurvivable(t *testing.T) {
	q := durParse(t)
	ffs := faultfs.New(nil)
	dir := filepath.Join(t.TempDir(), "log")
	opts := ivmeps.Options{
		Epsilon: 0.5, Workers: 2,
		Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways},
	}
	ivmeps.SetDurabilityFS(&opts.Durability, ffs)
	e, err := ivmeps.New(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.LoadWeighted("R", []int64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("S", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}

	ffs.Inject(faultfs.Rename, 1)
	if err := e.Checkpoint(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Checkpoint with failing rename = %v, want the injected error", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range names {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			t.Fatalf("failed checkpoint left temporary %s", ent.Name())
		}
	}
	// Not wedged: commits and a checkpoint retry keep working.
	if err := e.Insert("S", []int64{1, 3}); err != nil {
		t.Fatalf("Insert after failed checkpoint = %v, want nil", err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint retry = %v, want nil", err)
	}
	st, epoch := durState(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := ivmeps.Open(q, ivmeps.Options{
		Epsilon: 0.5, Workers: 2,
		Durability: ivmeps.Durability{Dir: dir, Sync: ivmeps.SyncAlways},
	})
	if err != nil {
		t.Fatalf("Open after checkpoint retry: %v", err)
	}
	defer r.Close()
	got, gotEpoch := durState(t, r)
	if gotEpoch != epoch || !sameState(got, st) {
		t.Fatalf("recovered epoch %d, want %d", gotEpoch, epoch)
	}
}
